"""Critical-path extraction: where did this window's latency come from?

Given one emitted window, walk its causal events *backwards* from the
emit — each step asks "what was the last thing that had to happen before
this one could?" — and bucket the end-to-end latency into named stages:

==================  ==========================================================
stage               the time between ...
==================  ==========================================================
``ingest-wait``     first contributing ingest → the gating slice opens/cuts
``slicing``         the gating slice's span (its start → its cut)
``queue``           the gating slice's cut → its batch ships off the node
``shed``            the share of staging wait ending in a ``buffer.shed``
                    (overload control dropped coverage; DESIGN.md §12)
``credit-stall``    a ``credit.stall`` on the shipping node → the ship
                    (the channel was out of credit; DESIGN.md §12)
``network``         a batch enters a link → it is delivered (post-fault)
``retransmit``      the share of a hop spent re-sending lost frames
``merge``           a delivery → the intermediate (or root merger) releases it
``root-assembly``   the root's last consume → the window reaches the sink
==================  ==========================================================

The walk maintains a monotone anchor chain from the emit time down to
the first ingest: every candidate anchor is clamped into the remaining
``[t0, bound]`` interval, so the stage durations are non-negative and
**telescope to exactly the window's emission latency** in integer sim-ms
— the invariant the conformance harness checks on every corpus scenario.
Clamping matters because recorder timestamps are not monotone in
sequence order (a punctuation can cut a slice after later hops were
recorded; a force-closed window can emit past its last consume).

Zero-length stages are dropped from the segment list; the telescoping
sum is unaffected.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import WindowTrace, collect_window_events
from repro.obs.tracing import TraceEvent, TraceRecorder

__all__ = [
    "STAGES",
    "StageSegment",
    "CriticalPath",
    "compute_critical_path",
    "compute_critical_paths",
    "publish_span_metrics",
    "render_waterfall",
    "render_chrome_trace",
    "write_chrome_trace",
    "top_slowest",
]

#: the stage taxonomy, in pipeline order
STAGES = (
    "ingest-wait",
    "slicing",
    "queue",
    "shed",
    "credit-stall",
    "network",
    "retransmit",
    "merge",
    "root-assembly",
)


@dataclass(frozen=True, slots=True)
class StageSegment:
    """One contiguous stretch of the critical path, in simulated ms."""

    stage: str
    start: int
    end: int
    node: str = ""
    link: str = ""

    @property
    def duration(self) -> int:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "stage": self.stage,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
        }
        if self.node:
            out["node"] = self.node
        if self.link:
            out["link"] = self.link
        return out


@dataclass(slots=True)
class CriticalPath:
    """The latency attribution of one emitted window."""

    trace_id: str
    query_id: str
    start: int
    end: int
    group: int
    ingested_at: int
    emitted_at: int
    #: earliest-first, contiguous over ``[ingested_at, emitted_at]``
    #: modulo dropped zero-length stages
    segments: list[StageSegment] = field(default_factory=list)

    @property
    def latency(self) -> int:
        """End-to-end emission latency; equals the stage sum exactly."""
        return self.emitted_at - self.ingested_at

    def stage_totals(self) -> dict[str, int]:
        """Per-stage totals over every named stage (zeros included)."""
        totals = {stage: 0 for stage in STAGES}
        for segment in self.segments:
            totals[segment.stage] += segment.duration
        return totals

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "query_id": self.query_id,
            "start": self.start,
            "end": self.end,
            "group": self.group,
            "ingested_at": self.ingested_at,
            "emitted_at": self.emitted_at,
            "latency": self.latency,
            "stages": {
                stage: total
                for stage, total in self.stage_totals().items()
                if total
            },
            "segments": [segment.to_dict() for segment in self.segments],
        }


def _latest_seq(events: list[TraceEvent], before: int, **match: Any):
    best = None
    for event in events:
        if event.seq >= before:
            continue
        ok = True
        for key, want in match.items():
            if key == "node":
                got = event.node
            elif key == "link_dst":
                link = event.data.get("link", "")
                got = link.split("->", 1)[1] if "->" in link else ""
            else:
                got = event.data.get(key)
            if got != want:
                ok = False
                break
        if ok and (best is None or event.seq > best.seq):
            best = event
    return best


def compute_critical_path(recorder: TraceRecorder, result) -> CriticalPath:
    """Attribute one window's emission latency to pipeline stages.

    Raises ``KeyError`` when the window's emit event is not in the ring
    (same contract as :meth:`TraceRecorder.explain_window`).
    """
    ev = collect_window_events(recorder, result)
    emit = ev.emit
    t0 = ev.ingested_at
    path = CriticalPath(
        trace_id=f"{result.query_id}:{result.start}:{result.end}",
        query_id=result.query_id,
        start=result.start,
        end=result.end,
        group=ev.group,
        ingested_at=t0,
        emitted_at=emit.at,
    )
    backwards: list[StageSegment] = []
    bound = emit.at

    def push(stage: str, at: int | float, node: str = "", link: str = "") -> None:
        nonlocal bound
        anchor = max(t0, min(int(at), bound))
        if anchor < bound:
            backwards.append(StageSegment(stage, anchor, bound, node, link))
        bound = anchor

    def hop(transit: TraceEvent, sender: TraceEvent, link: str) -> None:
        """Split sender → delivery into retransmit + network time."""
        last_resend = max(
            (
                r.at
                for r in ev.retransmits
                if r.data.get("link") == link
                and r.seq < transit.seq
                and sender.at <= r.at
            ),
            default=None,
        )
        if last_resend is not None and last_resend > sender.at:
            push("network", last_resend, link=link)
            push("retransmit", sender.at, link=link)
        else:
            push("network", sender.at, link=link)

    consume = _latest_seq(ev.consumes, emit.seq)
    if consume is not None:
        # Cluster path: emit ← root assembly ← consume ← ... hops ... ←
        # ship ← slice cut ← slice open ← first ingest.
        push("root-assembly", consume.at, node=emit.node)
        cur = consume
        while True:
            transit = _latest_seq(ev.transits, cur.seq, link_dst=cur.node)
            if transit is None:
                break
            push("merge", transit.at, node=cur.node)
            link = transit.data.get("link", "")
            src = link.split("->", 1)[0]
            sender = _latest_seq(
                ev.ships + ev.releases,
                transit.seq,
                node=src,
                first_seq=transit.data.get("first_seq"),
            ) or _latest_seq(ev.ships + ev.releases, transit.seq, node=src)
            if sender is None:
                break
            hop(transit, sender, link)
            if sender.kind == "merge.release":
                cur = sender  # descend another tier; seq strictly shrinks
                continue
            gating_slice = _latest_seq(ev.slices, sender.seq, node=sender.node)
            if gating_slice is not None:
                # Overload control (DESIGN.md §12): a credit stall on the
                # shipping node delayed this ship, and a shed ended part
                # of the staging wait — carve both out of "queue".  The
                # stall counts only while outstanding: an intervening ship
                # from the same node means the channel resumed first.
                stall = _latest_seq(ev.stalls, sender.seq, node=sender.node)
                if stall is not None and sender.at > gating_slice.at:
                    resumed = any(
                        s.node == sender.node
                        and stall.seq < s.seq < sender.seq
                        for s in ev.ships
                    )
                    if not resumed:
                        push("credit-stall",
                             max(stall.at, gating_slice.at),
                             node=sender.node)
                shed = _latest_seq(ev.sheds, sender.seq, node=sender.node)
                if shed is not None and shed.at > gating_slice.at:
                    push("shed", shed.at, node=sender.node)
                push("queue", gating_slice.at, node=sender.node)
                push("slicing", gating_slice.data["start"], node=sender.node)
            break
    else:
        # Single-engine path: no network hops; the last cut gates the emit.
        gating_slice = _latest_seq(ev.slices, emit.seq)
        if gating_slice is not None:
            push("merge", gating_slice.at, node=emit.node)
            push("slicing", gating_slice.data["start"], node=gating_slice.node)
    push("ingest-wait", t0)
    path.segments = list(reversed(backwards))
    return path


def compute_critical_paths(
    recorder: TraceRecorder, results
) -> list[CriticalPath]:
    """Critical paths for every result still explainable from the ring."""
    paths: list[CriticalPath] = []
    for result in results:
        try:
            paths.append(compute_critical_path(recorder, result))
        except KeyError:
            continue
    return paths


def top_slowest(
    recorder: TraceRecorder, results, n: int = 5
) -> list[CriticalPath]:
    """The ``n`` highest-latency windows, slowest first (ties by id)."""
    paths = compute_critical_paths(recorder, results)
    paths.sort(key=lambda p: (-p.latency, p.trace_id))
    return paths[:n]


# -- metrics -------------------------------------------------------------------


def publish_span_metrics(
    registry: MetricsRegistry, paths: Iterable[CriticalPath]
) -> None:
    """Per-stage / per-node / per-link aggregates under ``span.*``."""
    for path in paths:
        registry.counter("span.windows").inc()
        registry.histogram("span.latency_ms").observe(float(path.latency))
        for segment in path.segments:
            ms = float(segment.duration)
            registry.counter("span.stage_ms", stage=segment.stage).inc(ms)
            if segment.node:
                registry.counter("span.node_ms", node=segment.node).inc(ms)
            if segment.link:
                registry.counter("span.link_ms", link=segment.link).inc(ms)


# -- text waterfall ------------------------------------------------------------


def render_waterfall(path: CriticalPath, width: int = 40) -> str:
    """The critical path as the indented text waterfall humans read."""
    header = (
        f"{path.query_id} [{path.start}..{path.end}) group {path.group}: "
        f"{path.latency} ms (ingest {path.ingested_at} -> "
        f"emit {path.emitted_at})"
    )
    lines = [header]
    span = max(path.latency, 1)
    for segment in path.segments:
        offset = round((segment.start - path.ingested_at) * width / span)
        length = max(1, round(segment.duration * width / span))
        length = min(length, width - min(offset, width - 1))
        bar = " " * offset + "#" * length
        where = segment.node or segment.link
        label = f"{segment.stage} ({where})" if where else segment.stage
        lines.append(
            f"  {label:<28} {segment.start:>8} ..{segment.end:>8} "
            f"{segment.duration:>7} ms  |{bar:<{width}}|"
        )
    return "\n".join(lines)


# -- Perfetto / Chrome trace export --------------------------------------------


def render_chrome_trace(traces: Iterable[WindowTrace]) -> str:
    """Span trees as a Chrome-trace / Perfetto JSON document.

    Every node becomes a named thread; every span a complete ("X")
    event with microsecond timestamps (sim-ms × 1000).  Output is
    deterministic: thread ids follow first appearance, events follow
    (trace, span id) order, keys are fixed.
    """
    tids: dict[str, int] = {}
    events: list[dict[str, Any]] = []
    for trace in traces:
        for span in trace.spans:
            node = span.node or "net"
            tid = tids.setdefault(node, len(tids) + 1)
            events.append(
                {
                    "name": span.name,
                    "cat": "span",
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "ts": span.start * 1000,
                    "dur": span.duration * 1000,
                    "args": {
                        "trace_id": span.trace_id,
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                        **span.attrs,
                    },
                }
            )
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": node},
        }
        for node, tid in sorted(tids.items(), key=lambda item: item[1])
    ]
    document = {
        "traceEvents": [*metadata, *events],
        "displayTimeUnit": "ms",
    }
    return json.dumps(document, sort_keys=False, separators=(",", ":"))


def write_chrome_trace(traces: Iterable[WindowTrace], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_chrome_trace(traces))
        fh.write("\n")
