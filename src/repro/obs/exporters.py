"""Exporters: traces to JSONL, metrics to Prometheus text / JSON, reports.

Three audiences, three formats:

* machines diffing two runs read the **JSON-lines trace dump**
  (:func:`render_trace_jsonl`) — one event per line, stable key order,
  simulated timestamps, so ``diff`` on two same-seed runs is empty;
* scrapers read the **Prometheus text exposition**
  (:func:`render_prometheus`) — names are mangled ``a.b`` → ``a_b``,
  labels sorted, histograms expanded to ``_bucket``/``_sum``/``_count``;
* humans read the **run report** (:func:`render_report`) — the registry
  rendered through :func:`repro.harness.reporting.render_table`.

:func:`write_metrics` is the one-call sink behind every ``--metrics-out``
flag: the file extension picks the format (``.prom``/``.txt`` →
Prometheus text, anything else → a JSON document).
"""

from __future__ import annotations

import json

from repro.obs.registry import MetricSample, MetricsRegistry
from repro.obs.tracing import TraceRecorder

__all__ = [
    "render_trace_jsonl",
    "write_trace_jsonl",
    "render_prometheus",
    "metrics_to_dict",
    "render_metrics_json",
    "write_metrics",
    "render_report",
]


# -- traces --------------------------------------------------------------------


def render_trace_jsonl(recorder: TraceRecorder) -> str:
    """The recorder's buffer as JSON-lines (one event per line)."""
    return "\n".join(
        json.dumps(event.to_dict(), sort_keys=False, separators=(",", ":"))
        for event in recorder.events()
    )


def write_trace_jsonl(recorder: TraceRecorder, path: str) -> int:
    """Dump the trace to ``path``; returns the number of events written."""
    text = render_trace_jsonl(recorder)
    with open(path, "w", encoding="utf-8") as fh:
        if text:
            fh.write(text)
            fh.write("\n")
    return len(recorder)


# -- Prometheus text exposition ------------------------------------------------


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _escape(value: str) -> str:
    # Exposition-format label escaping: backslash first, then quote and
    # newline (a raw newline would terminate the sample line mid-label).
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_labels(labels: dict[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = [*sorted(labels.items()), *extra]
    if not items:
        return ""
    body = ",".join(f'{key}="{_escape(value)}"' for key, value in items)
    return "{" + body + "}"


def _prom_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    lines: list[str] = []
    typed: set[str] = set()
    for sample in registry.collect():
        name = _prom_name(sample.name)
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {sample.kind}")
        if sample.kind == "histogram":
            for bound, count in sample.buckets or ():
                lines.append(
                    f"{name}_bucket"
                    f"{_prom_labels(sample.labels, (('le', _prom_value(bound)),))}"
                    f" {count}"
                )
            lines.append(
                f"{name}_bucket{_prom_labels(sample.labels, (('le', '+Inf'),))}"
                f" {sample.count}"
            )
            # _sum/_count are counter-typed series of their own; scrapers
            # that key on TYPE lines need them declared once each.
            if f"{name}_sum" not in typed:
                typed.add(f"{name}_sum")
                lines.append(f"# TYPE {name}_sum counter")
            lines.append(
                f"{name}_sum{_prom_labels(sample.labels)} {_prom_value(sample.sum or 0.0)}"
            )
            if f"{name}_count" not in typed:
                typed.add(f"{name}_count")
                lines.append(f"# TYPE {name}_count counter")
            lines.append(
                f"{name}_count{_prom_labels(sample.labels)} {sample.count}"
            )
        else:
            lines.append(
                f"{name}{_prom_labels(sample.labels)} {_prom_value(sample.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


# -- JSON ----------------------------------------------------------------------


def _sample_to_dict(sample: MetricSample) -> dict:
    out: dict = {
        "name": sample.name,
        "labels": sample.labels,
        "kind": sample.kind,
        "value": sample.value,
    }
    if sample.kind == "histogram":
        out["buckets"] = [[bound, count] for bound, count in sample.buckets or ()]
        out["sum"] = sample.sum
        out["count"] = sample.count
    return out


def metrics_to_dict(registry: MetricsRegistry) -> dict:
    """A JSON-ready document of every metric in the registry."""
    return {"metrics": [_sample_to_dict(s) for s in registry.collect()]}


def render_metrics_json(registry: MetricsRegistry, **extra) -> str:
    document = metrics_to_dict(registry)
    document.update(extra)
    return json.dumps(document, indent=2, sort_keys=False)


def write_metrics(registry: MetricsRegistry, path: str, **extra) -> None:
    """Write the registry to ``path``; extension selects the format.

    ``.prom`` / ``.txt`` produce Prometheus text; everything else a JSON
    document (``extra`` keys are merged in at the top level, JSON only).
    """
    if path.endswith((".prom", ".txt")):
        text = render_prometheus(registry)
    else:
        text = render_metrics_json(registry, **extra) + "\n"
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)


# -- human-readable run report -------------------------------------------------


def _fmt_labels(labels: dict[str, str]) -> str:
    if not labels:
        return "-"
    return ",".join(f"{key}={value}" for key, value in sorted(labels.items()))


def render_report(registry: MetricsRegistry,
                  title: str = "Run report") -> str:
    """The registry as the aligned table humans read after a run."""
    # Imported here so the obs package stays importable from every layer
    # (repro.harness pulls in the engine at package-import time).
    from repro.harness.reporting import render_table

    rows = [
        [sample.name, _fmt_labels(sample.labels), sample.kind,
         _prom_value(sample.value)]
        for sample in registry.collect()
    ]
    return render_table(title, ["metric", "labels", "kind", "value"], rows)
