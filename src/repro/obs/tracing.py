"""Slice-lifecycle tracing in simulated time.

Every window result a Desis cluster emits is the end of a pipeline that
the paper only ever describes in aggregate: slices close on local nodes,
partial batches ship upward, intermediates merge and release them, the
root consumes covered records and assembles windows.  The trace recorder
captures that pipeline as a bounded stream of events:

========================  =====================================================
kind                      recorded when / by
========================  =====================================================
``slice.close``           a node's group runtime terminates a slice
``partial.ship``          a local node ships a :class:`PartialBatchMessage`
``merge.release``         an intermediate releases covered records upward
``root.consume``          the root's merger hands covered records to assembly
``window.emit``           a window result reaches the sink
``merge.reuse``           a window close is served by the incremental merge
                          layer instead of a full slice/record scan (engine
                          and root; see repro.core.incmerge)
``net.send``              the reliable channel first offers a partial batch
                          frame to a link (sequenced-envelope path only)
``net.transit``           a partial batch finishes crossing a link, right
                          before the receiving node consumes it
``net.ack``               a cumulative ack reaches the sending channel
``net.retransmit``        the reliable channel re-sends an unacked frame
``checkpoint.save``       a node persists a state snapshot (DESIGN.md §8)
``node.recover``          a node restores after a state-losing restart
``child.reroute``         failover adopts a dead intermediate's child
``credit.stall``          a reliable channel runs out of credit and its
                          sender stops shipping (DESIGN.md §12)
``buffer.shed``           a bounded staging buffer sheds whole slices,
                          degrading the affected windows (DESIGN.md §12)
========================  =====================================================

Events are keyed by ``(group, slice id, node)`` and stamped with
*simulated* milliseconds, never wall clock, so a trace is deterministic:
two runs with the same seed produce byte-identical traces, and a run
under a fault plan can be diffed against its lossless twin.

The default recorder everywhere is :data:`NULL_RECORDER`, a shared no-op
whose ``enabled`` flag is ``False`` — instrumented hot paths guard with
``if recorder.enabled:`` and pay one attribute read when tracing is off.

:meth:`TraceRecorder.explain_window` answers the question the motivation
section of the issue poses ("why did this window degrade under 5%
drop?"): given an emitted :class:`~repro.core.results.WindowResult` it
walks the ring buffer backwards and reconstructs the window's provenance
— contributing slices, source nodes, merge hops with per-hop timestamps,
and the retransmits that preceded the emit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.log import get_logger

_log = get_logger(__name__)

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "NULL_RECORDER",
    "WindowProvenance",
]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One point in a slice's lifecycle.

    Attributes:
        seq: recorder-wide sequence number (total order within a run).
        at: simulated time in ms (deterministic across runs).
        kind: one of the lifecycle kinds in the module table.
        node: the node the event happened on (``""`` for network events).
        group: query-group id (``-1`` for network events).
        data: kind-specific payload (slice bounds, record spans, ...).
    """

    seq: int
    at: int
    kind: str
    node: str = ""
    group: int = -1
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "at": self.at,
            "kind": self.kind,
            "node": self.node,
            "group": self.group,
            **self.data,
        }


@dataclass(slots=True)
class WindowProvenance:
    """Everything the trace knows about one emitted window."""

    query_id: str
    start: int
    end: int
    group: int
    emitted_at: int
    event_count: int
    #: local nodes whose slices fed the window, sorted
    sources: list[str]
    #: contributing ``slice.close`` events (node, slice bounds, cut time)
    slices: list[TraceEvent]
    #: ship/merge/consume hops that carried the window's records, in order
    hops: list[TraceEvent]
    #: reliable-channel re-sends per link observed before the emit
    retransmits: dict[str, int]
    #: ``buffer.shed`` events whose shed coverage intersects the window
    #: (DESIGN.md §12); non-empty exactly when the result is degraded
    sheds: list[TraceEvent] = field(default_factory=list)
    #: the emitted result's completeness (1.0 unless coverage was shed)
    completeness: float = 1.0

    @property
    def total_retransmits(self) -> int:
        return sum(self.retransmits.values())

    def to_dict(self) -> dict[str, Any]:
        return {
            "query_id": self.query_id,
            "start": self.start,
            "end": self.end,
            "group": self.group,
            "emitted_at": self.emitted_at,
            "event_count": self.event_count,
            "sources": self.sources,
            "slices": [event.to_dict() for event in self.slices],
            "hops": [event.to_dict() for event in self.hops],
            "retransmits": self.retransmits,
            "sheds": [event.to_dict() for event in self.sheds],
            "completeness": self.completeness,
        }


#: hop kinds, in pipeline order (used for provenance ordering)
_HOP_KINDS = ("partial.ship", "merge.release", "root.consume")


class TraceRecorder:
    """A ring-buffered recorder of slice-lifecycle events.

    ``capacity`` bounds memory: the oldest events fall off the ring and
    :attr:`dropped` counts them, so long runs stay O(capacity) while
    recent windows remain fully explainable.
    """

    __slots__ = ("_events", "_seq", "dropped", "capacity", "_warned_drop")

    enabled = True

    def __init__(self, capacity: int = 65_536) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0
        self.dropped = 0
        self._warned_drop = False

    def __len__(self) -> int:
        return len(self._events)

    def record(self, kind: str, at: int | float, *, node: str = "",
               group: int = -1, **data: Any) -> None:
        self._seq += 1
        if len(self._events) == self.capacity:
            self.dropped += 1
            if not self._warned_drop:
                self._warned_drop = True
                _log.warning(
                    "trace ring buffer full (capacity=%d); evicting oldest "
                    "events — older windows are no longer explainable",
                    self.capacity,
                )
        self._events.append(
            TraceEvent(
                seq=self._seq,
                at=int(at),
                kind=kind,
                node=node,
                group=group,
                data=data,
            )
        )

    def events(self, kind: str | None = None, *, group: int | None = None,
               node: str | None = None) -> Iterator[TraceEvent]:
        """Iterate buffered events in record order, optionally filtered."""
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if group is not None and event.group != group:
                continue
            if node is not None and event.node != node:
                continue
            yield event

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
        self._warned_drop = False

    # -- provenance ------------------------------------------------------------

    def explain_window(self, result) -> WindowProvenance:
        """Reconstruct the provenance of an emitted window result.

        ``result`` is a :class:`~repro.core.results.WindowResult` (or any
        object with ``query_id``/``start``/``end``).  Raises ``KeyError``
        when the window's emit event is not in the buffer (never traced,
        or already evicted from the ring).
        """
        emit: TraceEvent | None = None
        for event in reversed(self._events):
            if (
                event.kind == "window.emit"
                and event.data.get("query_id") == result.query_id
                and event.data.get("start") == result.start
                and event.data.get("end") == result.end
            ):
                emit = event
                break
        if emit is None:
            raise KeyError(
                f"no window.emit trace for {result.query_id!r} "
                f"[{result.start}..{result.end}); was tracing enabled, and "
                f"is the window still inside the ring buffer?"
            )
        group = emit.group
        start, end = result.start, result.end
        slices: list[TraceEvent] = []
        hops: list[TraceEvent] = []
        retransmits: dict[str, int] = {}
        sheds: list[TraceEvent] = []
        for event in self._events:
            if event.seq > emit.seq:
                break
            if event.kind == "net.retransmit":
                link = event.data.get("link", "?")
                retransmits[link] = retransmits.get(link, 0) + 1
                continue
            if event.group != group:
                continue
            if event.kind == "slice.close":
                if self._overlaps(event, start, end):
                    slices.append(event)
            elif event.kind in _HOP_KINDS:
                if self._overlaps(event, start, end):
                    hops.append(event)
            elif event.kind == "buffer.shed":
                if self._overlaps(event, start, end):
                    sheds.append(event)
        hops.sort(key=lambda e: (e.at, _HOP_KINDS.index(e.kind), e.seq))
        return WindowProvenance(
            query_id=result.query_id,
            start=start,
            end=end,
            group=group,
            emitted_at=emit.at,
            event_count=emit.data.get("event_count", 0),
            sources=sorted({e.node for e in slices}),
            slices=slices,
            hops=hops,
            retransmits=retransmits,
            sheds=sheds,
            completeness=emit.data.get("completeness", 1.0),
        )

    @staticmethod
    def _overlaps(event: TraceEvent, start: int, end: int) -> bool:
        """Whether the event's ``[start, end)`` span intersects the window."""
        span_start = event.data.get("start")
        span_end = event.data.get("end")
        if span_start is None or span_end is None:
            return False
        if span_start == span_end:  # empty span: boundary slices count once
            return start <= span_start < end
        return span_start < end and span_end > start


class _NullRecorder(TraceRecorder):
    """The shared disabled recorder: every hook is a cheap no-op.

    Hot paths must guard with ``if recorder.enabled:`` so tracing costs a
    single attribute read when off; ``record`` is still safe to call.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def record(self, kind: str, at: int | float, *, node: str = "",
               group: int = -1, **data: Any) -> None:
        return None


NULL_RECORDER = _NullRecorder()
