"""Observability: metrics registry, slice-lifecycle tracing, exporters.

See DESIGN.md ("Observability") for the metric name catalogue and the
trace event schema.  The package is dependency-free and safe to import
from every layer; the shared :data:`NULL_RECORDER` keeps instrumented
hot paths free when tracing is off.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricSample,
    MetricsRegistry,
    publish_cluster_result,
    publish_conformance_counters,
    publish_engine_stats,
    publish_latency_summary,
    publish_network_stats,
    publish_shard_stats,
)
from repro.obs.tracing import (
    NULL_RECORDER,
    TraceEvent,
    TraceRecorder,
    WindowProvenance,
)
from repro.obs.spans import (
    Span,
    WindowTrace,
    build_window_trace,
    build_window_traces,
    render_spans_jsonl,
    write_spans_jsonl,
)
from repro.obs.critical_path import (
    STAGES,
    CriticalPath,
    StageSegment,
    compute_critical_path,
    compute_critical_paths,
    publish_span_metrics,
    render_chrome_trace,
    render_waterfall,
    top_slowest,
    write_chrome_trace,
)
from repro.obs.exporters import (
    metrics_to_dict,
    render_metrics_json,
    render_prometheus,
    render_report,
    render_trace_jsonl,
    write_metrics,
    write_trace_jsonl,
)
from repro.obs.log import configure_logging, get_logger, kv
from repro.obs.regress import (
    BaselineManifest,
    RegressionReport,
    check_benchmarks,
    render_regression_report,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "publish_cluster_result",
    "publish_conformance_counters",
    "publish_engine_stats",
    "publish_latency_summary",
    "publish_network_stats",
    "publish_shard_stats",
    "NULL_RECORDER",
    "TraceEvent",
    "TraceRecorder",
    "WindowProvenance",
    "Span",
    "WindowTrace",
    "build_window_trace",
    "build_window_traces",
    "render_spans_jsonl",
    "write_spans_jsonl",
    "STAGES",
    "CriticalPath",
    "StageSegment",
    "compute_critical_path",
    "compute_critical_paths",
    "publish_span_metrics",
    "render_chrome_trace",
    "render_waterfall",
    "top_slowest",
    "write_chrome_trace",
    "BaselineManifest",
    "RegressionReport",
    "check_benchmarks",
    "render_regression_report",
    "metrics_to_dict",
    "render_metrics_json",
    "render_prometheus",
    "render_report",
    "render_trace_jsonl",
    "write_metrics",
    "write_trace_jsonl",
    "configure_logging",
    "get_logger",
    "kv",
]
