"""Structured stdlib logging for the repro package.

The codebase previously had zero logging calls; modules now obtain their
logger through :func:`get_logger` so every record lands under the
``repro`` hierarchy, and entry points opt into output with
:func:`configure_logging`.  Library code never configures handlers
itself — until an entry point (CLI, benchmark, test) calls
:func:`configure_logging`, records propagate to a ``NullHandler`` and the
package stays silent, exactly as a library should.

The format is single-line ``key=value`` structured text::

    1691155200.123 INFO repro.cluster.desis run events=100000 wall=1.42

Extra fields are passed through the standard ``extra`` mechanism via
:func:`kv`, which formats them deterministically (sorted keys).
"""

from __future__ import annotations

import logging
from typing import Any

__all__ = ["get_logger", "configure_logging", "kv"]

_ROOT_NAME = "repro"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    Pass ``__name__``; module paths already under ``repro.`` are used
    as-is, anything else is nested beneath ``repro.``.
    """
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def kv(**fields: Any) -> str:
    """Render extra fields as deterministic ``key=value`` text."""
    return " ".join(f"{key}={fields[key]}" for key in sorted(fields))


def configure_logging(level: int | str = logging.INFO,
                      stream=None) -> logging.Handler:
    """Attach one structured stream handler to the ``repro`` logger.

    Idempotent: calling again replaces the previously attached handler
    instead of stacking duplicates.  Returns the handler (tests use it to
    point the stream at a buffer).
    """
    logger = logging.getLogger(_ROOT_NAME)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_structured", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(
        logging.Formatter("%(created).3f %(levelname)s %(name)s %(message)s")
    )
    handler._repro_structured = True
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler
