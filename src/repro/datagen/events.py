"""The data generator (Sec 6.1.2).

Mirrors the paper's generator: every event has ``time``, ``key``,
``value``, and ``event`` (marker) fields, and the generator is configured
with the key distribution, value source, the frequency of user-defined
events, and session gaps.  Deterministic under a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import ReproError
from repro.core.event import Event

__all__ = ["DataGeneratorConfig", "DataGenerator", "zipf_weights"]


def zipf_weights(n: int, skew: float = 1.0) -> list[float]:
    """Zipfian key weights: weight of rank ``r`` is ``1 / r**skew``."""
    if n < 1:
        raise ReproError("need at least one key")
    return [1.0 / (rank**skew) for rank in range(1, n + 1)]


@dataclass(slots=True)
class DataGeneratorConfig:
    """Knobs of the event generator.

    Attributes:
        keys: the distinct event keys.
        key_weights: relative key frequencies (uniform when ``None``).
        rate: mean events per second of event time.
        value_lo / value_hi: uniform value range.
        marker: user-defined window end marker attached at
            ``marker_every_ms`` intervals (``None`` disables markers).
        gap_every_ms / gap_ms: inject a stream pause of ``gap_ms`` every
            ``gap_every_ms`` of event time (drives session windows).
        jitter: inter-arrival randomness; 0 = perfectly periodic.
        start: timestamp of the first event (>= cluster origin).
    """

    keys: tuple[str, ...] = ("k0",)
    key_weights: tuple[float, ...] | None = None
    rate: float = 1_000.0
    value_lo: float = 0.0
    value_hi: float = 100.0
    marker: str | None = None
    marker_every_ms: int = 1_000
    gap_every_ms: int | None = None
    gap_ms: int = 5_000
    jitter: float = 0.5
    start: int = 0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ReproError("rate must be positive")
        if not self.keys:
            raise ReproError("need at least one key")
        if self.key_weights is not None and len(self.key_weights) != len(self.keys):
            raise ReproError("key_weights must match keys")
        if self.value_lo >= self.value_hi:
            raise ReproError("empty value range")


class DataGenerator:
    """Deterministic event stream generator."""

    def __init__(self, config: DataGeneratorConfig, *, seed: int = 0) -> None:
        self.config = config
        self.seed = seed

    def events(self, n: int) -> Iterator[Event]:
        """Yield ``n`` in-order events."""
        cfg = self.config
        rng = random.Random(self.seed)
        step = 1_000.0 / cfg.rate  # ms between events
        keys = cfg.keys
        weights = list(cfg.key_weights) if cfg.key_weights is not None else None
        cumulative = None
        if weights is not None:
            total = sum(weights)
            acc = 0.0
            cumulative = []
            for w in weights:
                acc += w / total
                cumulative.append(acc)
        clock = float(cfg.start)
        next_marker = cfg.start + cfg.marker_every_ms
        next_gap = (
            cfg.start + cfg.gap_every_ms if cfg.gap_every_ms is not None else None
        )
        for _ in range(n):
            if cfg.jitter > 0.0:
                clock += step * (1.0 + cfg.jitter * (2.0 * rng.random() - 1.0))
            else:
                clock += step
            if next_gap is not None and clock >= next_gap:
                clock += cfg.gap_ms
                next_gap = clock + cfg.gap_every_ms
            time = int(clock)
            if cumulative is None:
                key = keys[rng.randrange(len(keys))]
            else:
                pick = rng.random()
                index = 0
                while cumulative[index] < pick:
                    index += 1
                key = keys[index]
            marker = None
            if cfg.marker is not None and time >= next_marker:
                marker = cfg.marker
                next_marker = time + cfg.marker_every_ms
            yield Event(
                time=time,
                key=key,
                value=rng.uniform(cfg.value_lo, cfg.value_hi),
                marker=marker,
            )

    def streams(self, n_nodes: int, events_per_node: int) -> dict[str, list[Event]]:
        """Per-local-node streams (``local-0`` .. ``local-{n-1}``).

        Each node reads from a different position of the underlying data
        (a different seed) — the paper's "generators read from different
        positions in the data set".  Node index ``i`` offsets timestamps
        by ``i`` ms so cross-node timestamps rarely collide.
        """
        streams = {}
        for i in range(n_nodes):
            cfg = self.config
            shifted = DataGeneratorConfig(
                keys=cfg.keys,
                key_weights=cfg.key_weights,
                rate=cfg.rate,
                value_lo=cfg.value_lo,
                value_hi=cfg.value_hi,
                marker=cfg.marker,
                marker_every_ms=cfg.marker_every_ms,
                gap_every_ms=cfg.gap_every_ms,
                gap_ms=cfg.gap_ms,
                jitter=cfg.jitter,
                start=cfg.start + i,
            )
            generator = DataGenerator(shifted, seed=self.seed + 7_919 * (i + 1))
            streams[f"local-{i}"] = list(generator.events(events_per_node))
        return streams
