"""A synthetic stand-in for the DEBS 2013 Grand Challenge dataset.

The paper replays recorded values from the DEBS 2013 soccer dataset
(player-worn sensors emitting position/velocity/acceleration at high
frequency).  The dataset itself is not redistributable here, so this
module synthesizes a stream with the same *shape* as consumed by the
evaluation: per-player sensor keys, smooth second-order random-walk values
(positions integrate velocities, like the real sensors), interleaved
sensors at a fixed aggregate rate, and ball-out-of-play markers that can
drive user-defined windows.

The substitution is documented in DESIGN.md §2; the evaluation touches the
dataset only through the generator's four event fields, which this
reproduces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import ReproError
from repro.core.event import Event

__all__ = ["DebsConfig", "DebsGenerator"]

#: Sensor channels per player, loosely after the DEBS 2013 schema.
_CHANNELS = ("px", "py", "v", "a")


@dataclass(slots=True)
class DebsConfig:
    """Synthetic soccer-sensor stream configuration.

    Attributes:
        players: number of tracked players (sensors emit per player).
        rate: aggregate events per second across all sensors (the real
            sensors produce 200 Hz each; scale to taste).
        out_of_play_every_ms: interval between ball-out-of-play markers
            (``None`` disables them).
        start: first timestamp.
    """

    players: int = 16
    rate: float = 10_000.0
    out_of_play_every_ms: int | None = None
    start: int = 0

    def __post_init__(self) -> None:
        if self.players < 1:
            raise ReproError("need at least one player")
        if self.rate <= 0:
            raise ReproError("rate must be positive")


class _PlayerState:
    """Second-order random walk: acceleration -> velocity -> position."""

    __slots__ = ("x", "y", "vx", "vy")

    def __init__(self, rng: random.Random) -> None:
        self.x = rng.uniform(0.0, 105.0)
        self.y = rng.uniform(0.0, 68.0)
        self.vx = rng.uniform(-2.0, 2.0)
        self.vy = rng.uniform(-2.0, 2.0)

    def advance(self, rng: random.Random, dt_s: float) -> tuple[float, float, float, float]:
        ax = rng.gauss(0.0, 1.5)
        ay = rng.gauss(0.0, 1.5)
        self.vx = max(-9.0, min(9.0, self.vx + ax * dt_s))
        self.vy = max(-9.0, min(9.0, self.vy + ay * dt_s))
        self.x = max(0.0, min(105.0, self.x + self.vx * dt_s))
        self.y = max(0.0, min(68.0, self.y + self.vy * dt_s))
        speed = (self.vx**2 + self.vy**2) ** 0.5
        accel = (ax**2 + ay**2) ** 0.5
        return self.x, self.y, speed, accel


class DebsGenerator:
    """Synthetic DEBS-2013-like stream: keys are ``p{player}-{channel}``."""

    def __init__(self, config: DebsConfig | None = None, *, seed: int = 0) -> None:
        self.config = config if config is not None else DebsConfig()
        self.seed = seed

    @property
    def keys(self) -> list[str]:
        return [
            f"p{player}-{channel}"
            for player in range(self.config.players)
            for channel in _CHANNELS
        ]

    def events(self, n: int) -> Iterator[Event]:
        cfg = self.config
        rng = random.Random(self.seed)
        players = [_PlayerState(rng) for _ in range(cfg.players)]
        step = 1_000.0 / cfg.rate
        clock = float(cfg.start)
        next_marker = (
            cfg.start + cfg.out_of_play_every_ms
            if cfg.out_of_play_every_ms is not None
            else None
        )
        #: time a player was last sampled, for dt integration
        last_sample = [float(cfg.start)] * cfg.players
        emitted = 0
        while emitted < n:
            clock += step
            player = rng.randrange(cfg.players)
            dt_s = max((clock - last_sample[player]) / 1_000.0, 1e-3)
            last_sample[player] = clock
            x, y, speed, accel = players[player].advance(rng, dt_s)
            values = {"px": x, "py": y, "v": speed, "a": accel}
            channel = _CHANNELS[rng.randrange(len(_CHANNELS))]
            time = int(clock)
            marker = None
            if next_marker is not None and time >= next_marker:
                marker = "out_of_play"
                next_marker = time + cfg.out_of_play_every_ms
            yield Event(
                time=time,
                key=f"p{player}-{channel}",
                value=values[channel],
                marker=marker,
            )
            emitted += 1

    def streams(self, n_nodes: int, events_per_node: int) -> dict[str, list[Event]]:
        """Per-local-node streams reading from different dataset positions."""
        streams = {}
        for i in range(n_nodes):
            cfg = DebsConfig(
                players=self.config.players,
                rate=self.config.rate,
                out_of_play_every_ms=self.config.out_of_play_every_ms,
                start=self.config.start + i,
            )
            generator = DebsGenerator(cfg, seed=self.seed + 104_729 * (i + 1))
            streams[f"local-{i}"] = list(generator.events(events_per_node))
        return streams
