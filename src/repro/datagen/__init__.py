"""Workload generators (Sec 6.1.2): events, synthetic DEBS data, queries."""

from repro.datagen.debs import DebsConfig, DebsGenerator
from repro.datagen.events import DataGenerator, DataGeneratorConfig, zipf_weights
from repro.datagen.queries import QueryGenerator, QueryGeneratorConfig

__all__ = [
    "DataGenerator",
    "DataGeneratorConfig",
    "DebsConfig",
    "DebsGenerator",
    "QueryGenerator",
    "QueryGeneratorConfig",
    "zipf_weights",
]
