"""The query generator (Sec 6.1.2).

Produces arbitrary query mixes over configured distributions of keys,
window types, measures, aggregation functions, and window lengths —
the knob set the paper's evaluation sweeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import ReproError
from repro.core.functions import FunctionSpec
from repro.core.predicates import Selection
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, WindowMeasure, WindowType

__all__ = ["QueryGeneratorConfig", "QueryGenerator"]

#: Functions safe on arbitrary real-valued streams (product/geomean need
#: value-range care and are opt-in).
_DEFAULT_FUNCTIONS = (
    AggFunction.SUM,
    AggFunction.COUNT,
    AggFunction.AVERAGE,
    AggFunction.MIN,
    AggFunction.MAX,
    AggFunction.MEDIAN,
    AggFunction.QUANTILE,
)


@dataclass(slots=True)
class QueryGeneratorConfig:
    """Distributions the query generator draws from.

    Attributes:
        keys: candidate selection keys; ``None`` entries mean pass-all.
        window_types: candidate window types.
        measures: candidate window measures (COUNT only applies to
            tumbling/sliding windows).
        functions: candidate aggregation functions.
        min_length_ms / max_length_ms: time-window length range.
        min_count / max_count: count-window length range.
        session_gap_ms: session window gap range.
        decomposable_only: restrict to decomposable functions (e.g. for
            workloads that must push down, Fig 13a).
    """

    keys: tuple[str | None, ...] = (None,)
    window_types: tuple[WindowType, ...] = (
        WindowType.TUMBLING,
        WindowType.SLIDING,
        WindowType.SESSION,
    )
    measures: tuple[WindowMeasure, ...] = (WindowMeasure.TIME,)
    functions: tuple[AggFunction, ...] = _DEFAULT_FUNCTIONS
    min_length_ms: int = 1_000
    max_length_ms: int = 10_000
    min_count: int = 100
    max_count: int = 10_000
    session_gap_ms: tuple[int, int] = (500, 5_000)
    decomposable_only: bool = False

    def __post_init__(self) -> None:
        if self.min_length_ms <= 0 or self.min_length_ms > self.max_length_ms:
            raise ReproError("invalid window length range")
        if not self.window_types or not self.functions:
            raise ReproError("need window types and functions")


class QueryGenerator:
    """Deterministic random query workloads."""

    def __init__(self, config: QueryGeneratorConfig | None = None, *,
                 seed: int = 0) -> None:
        self.config = config if config is not None else QueryGeneratorConfig()
        self.seed = seed

    def _window(self, rng: random.Random) -> WindowSpec:
        cfg = self.config
        kind = rng.choice(cfg.window_types)
        if kind is WindowType.SESSION:
            return WindowSpec.session(rng.randint(*cfg.session_gap_ms))
        if kind is WindowType.USER_DEFINED:
            return WindowSpec.user_defined(end_marker="end")
        measure = rng.choice(cfg.measures)
        if measure is WindowMeasure.COUNT:
            length = rng.randint(cfg.min_count, cfg.max_count)
            slide = max(1, length // rng.choice((1, 2, 4)))
        else:
            length = rng.randint(cfg.min_length_ms, cfg.max_length_ms)
            slide = max(1, length // rng.choice((1, 2, 4)))
        if kind is WindowType.TUMBLING:
            return WindowSpec.tumbling(length, measure=measure)
        return WindowSpec.sliding(length, slide, measure=measure)

    def _function(self, rng: random.Random) -> FunctionSpec:
        cfg = self.config
        candidates = cfg.functions
        if cfg.decomposable_only:
            candidates = tuple(
                fn
                for fn in candidates
                if fn not in (AggFunction.MEDIAN, AggFunction.QUANTILE)
            )
        fn = rng.choice(candidates)
        if fn is AggFunction.QUANTILE:
            return FunctionSpec(fn, rng.randint(1, 999) / 1_000)
        return FunctionSpec(fn)

    def queries(self, n: int, *, prefix: str = "q") -> list[Query]:
        """Generate ``n`` random queries with ids ``{prefix}0..{n-1}``."""
        rng = random.Random(self.seed)
        out = []
        for i in range(n):
            key = rng.choice(self.config.keys)
            out.append(
                Query(
                    query_id=f"{prefix}{i}",
                    window=self._window(rng),
                    function=self._function(rng),
                    selection=Selection(key=key),
                )
            )
        return out
