"""The systems evaluated in Section 6: Desis and the five baselines.

Centralized processors (this package) all satisfy
:class:`repro.baselines.api.StreamProcessor`; the decentralized deployments
(Desis clusters, Disco, centralized shipping) live in :mod:`repro.cluster`.
"""

from repro.baselines.api import ProcessorFactory, StreamProcessor
from repro.baselines.bucketed import CeBufferProcessor, DeBucketProcessor
from repro.baselines.engines import (
    DeSWProcessor,
    DesisProcessor,
    ScottyProcessor,
    ShardedDesisProcessor,
)

#: All centralized systems of Sec 6.3, keyed by display name.
CENTRALIZED_SYSTEMS = {
    "Desis": DesisProcessor,
    "Scotty": ScottyProcessor,
    "DeSW": DeSWProcessor,
    "DeBucket": DeBucketProcessor,
    "CeBuffer": CeBufferProcessor,
}

__all__ = [
    "CENTRALIZED_SYSTEMS",
    "CeBufferProcessor",
    "DeBucketProcessor",
    "DeSWProcessor",
    "DesisProcessor",
    "ProcessorFactory",
    "ScottyProcessor",
    "ShardedDesisProcessor",
    "StreamProcessor",
]
