"""Slicing engines under restricted sharing: Desis, Scotty, and DeSW.

All three are the same sliced engine; they differ in the sharing policy the
query analyzer applies and in how punctuations are found (Sec 6.1.1):

* :class:`DesisProcessor` — full sharing, punctuation heap.
* :class:`ScottyProcessor` — shares only between identical aggregation
  functions (the Scotty API's capability) and checks punctuations per
  event, like the original stream-slicing implementation.
* :class:`DeSWProcessor` — shares only between identical functions *and*
  window measures, per-event punctuation checks.
"""

from __future__ import annotations

from typing import Iterable

from repro.baselines.api import per_event_fallback
from repro.core.config import EngineConfig
from repro.core.engine import AggregationEngine
from repro.core.event import Event
from repro.core.query import Query
from repro.core.results import ResultSink
from repro.core.types import SharingPolicy
from repro.parallel import ShardedEngine

__all__ = [
    "DesisProcessor",
    "ScottyProcessor",
    "DeSWProcessor",
    "ShardedDesisProcessor",
]


class DesisProcessor(AggregationEngine):
    """Desis: full cross-function sharing with scheduled punctuations."""

    name = "Desis"

    def __init__(self, queries: Iterable[Query], sink: ResultSink | None = None,
                 merge_mode: str = "incremental"):
        super().__init__(
            queries,
            policy=SharingPolicy.FULL,
            punctuation_mode="heap",
            sink=sink,
            merge_mode=merge_mode,
        )


class ShardedDesisProcessor(ShardedEngine):
    """Desis on the multi-core sharded backend (DESIGN.md §13).

    Satisfies the same :class:`~repro.baselines.api.StreamProcessor`
    protocol as the in-process systems, so harnesses drive it unchanged.
    Not part of :data:`~repro.baselines.CENTRALIZED_SYSTEMS` by default:
    it only accepts fixed time windows, while the comparison workloads
    may roam the full window vocabulary — ``repro compare --shards N``
    adds it to the table explicitly.
    """

    def __init__(
        self,
        queries: Iterable[Query],
        sink: ResultSink | None = None,
        merge_mode: str = "incremental",
        shards: int = 4,
    ):
        super().__init__(
            queries,
            config=EngineConfig(merge_mode=merge_mode, shards=shards),
            sink=sink,
        )
        self.name = f"Desis x{shards}"


class ScottyProcessor(AggregationEngine):
    """The Scotty baseline: same-function sharing, per-event checks."""

    name = "Scotty"

    def __init__(self, queries: Iterable[Query], sink: ResultSink | None = None):
        super().__init__(
            queries,
            policy=SharingPolicy.SAME_FUNCTION,
            punctuation_mode="scan",
            sink=sink,
        )

    def process_batch(self, events: "list[Event]") -> None:
        # Scotty "checks each arriving event" (Sec 6.2.1): batch input
        # still pays the per-event loop so its cost model is preserved.
        per_event_fallback(self, events)


class DeSWProcessor(AggregationEngine):
    """The DeSW baseline: same function *and* measure, per-event checks."""

    name = "DeSW"

    def __init__(self, queries: Iterable[Query], sink: ResultSink | None = None):
        super().__init__(
            queries,
            policy=SharingPolicy.SAME_FUNCTION_AND_MEASURE,
            punctuation_mode="scan",
            sink=sink,
        )

    def process_batch(self, events: "list[Event]") -> None:
        # Like Scotty, DeSW models an engine without batched ingestion.
        per_event_fallback(self, events)
