"""Common interface for all centralized stream processors.

Every system under evaluation (Desis and the baselines of Sec 6.1.1)
implements the same driving protocol so that harnesses and benchmarks can
treat them interchangeably:

* ``process(event)`` — consume one in-order event,
* ``process_batch(events)`` — consume an ordered event batch; systems
  without a batched fast path fall back to a per-event loop so their cost
  model is unchanged (:func:`per_event_fallback` is that loop),
* ``advance(time)`` — apply a watermark,
* ``close()`` — flush and return the :class:`~repro.core.results.ResultSink`,
* ``stats`` — an :class:`~repro.core.engine.EngineStats` with work counters,
* ``name`` — display name used in result tables.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Sequence, runtime_checkable

from repro.core.engine import EngineStats
from repro.core.event import Event
from repro.core.query import Query
from repro.core.results import ResultSink

__all__ = ["StreamProcessor", "ProcessorFactory", "per_event_fallback"]


@runtime_checkable
class StreamProcessor(Protocol):
    """The driving protocol shared by Desis and every baseline."""

    name: str
    stats: EngineStats
    sink: ResultSink

    def process(self, event: Event) -> None: ...

    def process_batch(self, events: Sequence[Event]) -> None: ...

    def advance(self, time: int) -> None: ...

    def close(self, at_time: int | None = None) -> ResultSink: ...


def per_event_fallback(processor: "StreamProcessor", events: Sequence[Event]) -> None:
    """The default ``process_batch``: one :meth:`process` call per event.

    Baselines route their batch entry point here so harnesses can feed
    batches uniformly while every baseline keeps paying its per-event
    cost model (the work Figures 6–10 measure).
    """
    process = processor.process
    for event in events:
        process(event)


class ProcessorFactory(Protocol):
    """Builds a fresh processor for a query set (used by harnesses)."""

    def __call__(self, queries: Iterable[Query]) -> StreamProcessor: ...
