"""Common interface for all centralized stream processors.

Every system under evaluation (Desis and the baselines of Sec 6.1.1)
implements the same driving protocol so that harnesses and benchmarks can
treat them interchangeably:

* ``process(event)`` — consume one in-order event,
* ``advance(time)`` — apply a watermark,
* ``close()`` — flush and return the :class:`~repro.core.results.ResultSink`,
* ``stats`` — an :class:`~repro.core.engine.EngineStats` with work counters,
* ``name`` — display name used in result tables.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

from repro.core.engine import EngineStats
from repro.core.event import Event
from repro.core.query import Query
from repro.core.results import ResultSink

__all__ = ["StreamProcessor", "ProcessorFactory"]


@runtime_checkable
class StreamProcessor(Protocol):
    """The driving protocol shared by Desis and every baseline."""

    name: str
    stats: EngineStats
    sink: ResultSink

    def process(self, event: Event) -> None: ...

    def advance(self, time: int) -> None: ...

    def close(self, at_time: int | None = None) -> ResultSink: ...


class ProcessorFactory(Protocol):
    """Builds a fresh processor for a query set (used by harnesses)."""

    def __call__(self, queries: Iterable[Query]) -> StreamProcessor: ...
