"""Per-window ("bucketed") baselines: CeBuffer and DeBucket (Sec 6.1.1).

Neither system performs window slicing: every concurrent window owns a
private bucket and every event is applied to every open window it belongs
to, so overlapping windows repeat work (the redundancy Figures 8–10
quantify).  The two differ in *when* aggregation happens:

* :class:`CeBufferProcessor` buffers raw events per window and evaluates
  the aggregation function by iterating the whole buffer when the window
  ends — the paper's ``CeBuffer``.
* :class:`DeBucketProcessor` aggregates incrementally into per-window
  operator states and finalizes in O(1) at window end — the paper's
  ``DeBucket``.

Window lifecycle checks happen per event (no punctuation heap), matching
the engines these baselines model.  In the paper's slice accounting
(Fig 8b) each bucketed window counts as one slice, so ``slices_closed``
equals ``windows_closed`` here.
"""

from __future__ import annotations

from typing import Iterable

from repro.baselines.api import per_event_fallback
from repro.core.engine import EngineStats
from repro.core.errors import OutOfOrderError
from repro.core.event import Event
from repro.core.functions import finalize, operators_for
from repro.core.operators import OperatorSetState
from repro.core.query import Query
from repro.core.results import ResultSink, WindowResult
from repro.core.types import WindowMeasure, WindowType

__all__ = ["CeBufferProcessor", "DeBucketProcessor"]


class _Bucket:
    """One open window's private state."""

    __slots__ = ("start", "end", "payload", "start_count")

    def __init__(self, start: int, end: int | None, payload, start_count: int = 0):
        self.start = start
        self.end = end
        self.payload = payload
        self.start_count = start_count


class _QueryState:
    """Per-query window lifecycle state."""

    __slots__ = (
        "query",
        "selection",
        "kind",
        "count_based",
        "length",
        "slide",
        "gap",
        "start_marker",
        "end_marker",
        "key",
        "next_start",
        "last_match",
        "seen",
        "session_bucket",
        "userdef_bucket",
        "open",
        "operators",
    )

    def __init__(self, query: Query) -> None:
        self.query = query
        self.selection = query.selection
        spec = query.window
        self.kind = spec.window_type
        self.count_based = spec.measure is WindowMeasure.COUNT
        self.length = spec.length
        self.slide = spec.effective_slide if spec.is_fixed_size else None
        self.gap = spec.gap
        self.start_marker = spec.start_marker
        self.end_marker = spec.end_marker
        self.key = query.selection.key
        self.next_start: int | None = None
        self.last_match: int | None = None
        self.seen = 0
        self.session_bucket: _Bucket | None = None
        self.userdef_bucket: _Bucket | None = None
        self.open: list[_Bucket] = []
        self.operators = tuple(operators_for(query.function))


class _BucketedProcessor:
    """Shared driver for the two per-window baselines."""

    name = "bucketed"

    def __init__(self, queries: Iterable[Query], sink: ResultSink | None = None):
        self.sink = sink if sink is not None else ResultSink()
        self.stats = EngineStats()
        self.states = [_QueryState(query) for query in queries]
        self.stream_time: int | None = None

    # -- payload hooks (overridden per baseline) --------------------------------

    def _new_payload(self, state: _QueryState):
        raise NotImplementedError

    def _insert(self, state: _QueryState, bucket: _Bucket, value: float) -> None:
        raise NotImplementedError

    def _finalize(self, state: _QueryState, bucket: _Bucket):
        """Return ``(value, event_count)`` for a closing bucket."""
        raise NotImplementedError

    # -- window lifecycle --------------------------------------------------------

    def _open(self, state: _QueryState, start: int, end: int | None,
              start_count: int = 0) -> _Bucket:
        bucket = _Bucket(start, end, self._new_payload(state), start_count)
        state.open.append(bucket)
        self.stats.windows_opened += 1
        return bucket

    def _close(self, state: _QueryState, bucket: _Bucket, end: int) -> None:
        state.open.remove(bucket)
        self.stats.windows_closed += 1
        self.stats.slices_closed += 1  # one bucket == one slice (Fig 8b)
        value, count = self._finalize(state, bucket)
        if count == 0:
            return
        self.stats.results += 1
        self.sink.emit(
            WindowResult(
                query_id=state.query.query_id,
                start=bucket.start,
                end=end,
                value=value,
                event_count=count,
                emitted_at=self.stream_time if self.stream_time is not None else end,
            )
        )

    def _lifecycle_pre(self, state: _QueryState, now: int) -> None:
        """Close due windows, open due fixed windows (checked every event)."""
        if state.count_based:
            return
        if state.kind in (WindowType.TUMBLING, WindowType.SLIDING):
            if state.next_start is None:
                state.next_start = now
            due = [b for b in state.open if b.end is not None and b.end <= now]
            if due:
                due.sort(key=lambda b: b.end)
                for bucket in due:
                    self._close(state, bucket, bucket.end)
            while state.next_start <= now:
                end = state.next_start + state.length
                # Windows that already ended would stay empty; opening them
                # would wrongly capture the current event.
                if end > now:
                    self._open(state, state.next_start, end)
                state.next_start += state.slide
        elif state.kind is WindowType.SESSION:
            bucket = state.session_bucket
            if bucket is not None and now >= state.last_match + state.gap:
                state.session_bucket = None
                self._close(state, bucket, state.last_match + state.gap)

    # -- driving -------------------------------------------------------------------

    def process(self, event: Event) -> None:
        now = event.time
        if self.stream_time is not None and now < self.stream_time:
            raise OutOfOrderError(
                f"event at t={now} arrived after stream time {self.stream_time}"
            )
        self.stream_time = now
        self.stats.events += 1
        for state in self.states:
            self._lifecycle_pre(state, now)
            matches = state.selection.matches(event)
            self.stats.selection_checks += 1

            # Pre-insert opens for data-driven windows.
            if matches:
                if state.kind is WindowType.SESSION and state.session_bucket is None:
                    state.session_bucket = self._open(state, now, None)
                elif state.count_based and state.seen % state.slide == 0:
                    self._open(state, now, None, start_count=state.seen)
            if state.kind is WindowType.USER_DEFINED:
                relevant = state.key is None or event.key == state.key
                if relevant and state.userdef_bucket is None:
                    opens = (
                        state.start_marker is None
                        or event.marker == state.start_marker
                    )
                    if opens:
                        state.userdef_bucket = self._open(state, now, None)

            if matches:
                for bucket in state.open:
                    self._insert(state, bucket, event.value)
                self.stats.inserts += len(state.open)

            # Post-insert closes.
            if matches:
                state.last_match = now
                if state.count_based:
                    state.seen += 1
                    full = [
                        b
                        for b in state.open
                        if state.seen - b.start_count >= state.length
                    ]
                    for bucket in full:
                        self._close(state, bucket, now)
            if state.kind is WindowType.USER_DEFINED:
                bucket = state.userdef_bucket
                relevant = state.key is None or event.key == state.key
                if bucket is not None and relevant and event.marker == state.end_marker:
                    state.userdef_bucket = None
                    self._close(state, bucket, now)

    def process_batch(self, events) -> None:
        """Bucketed systems have no batched fast path: every event still
        pays the full per-window work their cost model charges."""
        per_event_fallback(self, events)

    def advance(self, time: int) -> None:
        if self.stream_time is not None and time < self.stream_time:
            raise OutOfOrderError(
                f"watermark {time} behind stream time {self.stream_time}"
            )
        self.stream_time = time
        for state in self.states:
            self._lifecycle_pre(state, time)

    def close(self, at_time: int | None = None) -> ResultSink:
        final = at_time if at_time is not None else (self.stream_time or 0)
        self.advance(final)
        for state in self.states:
            state.session_bucket = None
            state.userdef_bucket = None
            for bucket in list(state.open):
                end = bucket.end if bucket.end is not None else final
                self._close(state, bucket, end)
        return self.sink


class CeBufferProcessor(_BucketedProcessor):
    """The paper's CeBuffer: buffer per window, aggregate by iteration at end."""

    name = "CeBuffer"

    def _new_payload(self, state: _QueryState) -> list[float]:
        return []

    def _insert(self, state: _QueryState, bucket: _Bucket, value: float) -> None:
        bucket.payload.append(value)

    def _finalize(self, state: _QueryState, bucket: _Bucket):
        values: list[float] = bucket.payload
        if not values:
            return None, 0
        # The whole buffer is iterated through the query's operators at
        # window end — the cost CeBuffer pays instead of incremental work.
        ops = OperatorSetState(state.operators)
        for value in values:
            ops.insert(value)
        self.stats.calculations += ops.calculations
        return finalize(state.query.function, ops.partials()), len(values)


class DeBucketProcessor(_BucketedProcessor):
    """The paper's DeBucket: incremental per-window buckets, no sharing."""

    name = "DeBucket"

    def _new_payload(self, state: _QueryState) -> OperatorSetState:
        return OperatorSetState(state.operators)

    def _insert(self, state: _QueryState, bucket: _Bucket, value: float) -> None:
        bucket.payload.insert(value)
        self.stats.calculations += len(state.operators)

    def _finalize(self, state: _QueryState, bucket: _Bucket):
        ops: OperatorSetState = bucket.payload
        if ops.inserts == 0:
            return None, 0
        return finalize(state.query.function, ops.partials()), ops.inserts
