"""Deterministic shard-ordered reduce of per-shard window partials.

Each worker reports every window it closes — including empty ones — as a
:class:`~repro.network.messages.ShardWindowRecord` carrying the window's
raw operator partials.  Because all shards run the same fixed-window
schedule over the same punctuation stream, every shard closes exactly the
same *set* of windows; only the per-shard contents differ.  The reducer's
job is to recombine each window's N partials into the result the
single-process engine would have produced:

* **Matching** is by window identity ``(group_id, ctx, start, end,
  query_ids)`` — never by close ordinal, because two windows closing
  within one frame can close in different orders on different shards
  (one triggered by a shard-local event, the other by the trailing
  frame watermark).
* **Merge order** is always shard ``0..N-1`` via
  :func:`~repro.core.operators.merge_many_partials`, so float folds are
  reproducible run-to-run (within 1e-9 relative of the single-process
  fold; integer/extrema/sorted kinds are byte-identical because their
  merges are associative-commutative exactly).
* **Emission order** follows shard 0's close order: shard 0 runs the
  same schedule as a ``shards=1`` engine, so its close order is a valid
  engine close order, and results stream out as soon as every shard has
  reported the head window.
* **``emitted_at``** is the minimum across shards: the globally-first
  event (or watermark) at or past a window's end lives in exactly one
  shard, which closes the window with its stream clock at that time;
  every other shard closes it at a later-or-equal clock, so the minimum
  is exactly the single-process emission time.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.core.engine import EngineStats
from repro.core.errors import EngineError
from repro.core.functions import FunctionSpec, finalize
from repro.core.operators import merge_many_partials
from repro.core.results import ResultSink, WindowResult
from repro.network.messages import ShardWindowRecord

__all__ = ["ShardReducer"]


class ShardReducer:
    """Merges per-shard window partials into final results, in order."""

    def __init__(
        self,
        shards: int,
        functions: dict[str, FunctionSpec],
        sink: ResultSink,
        stats: EngineStats,
        *,
        emit_empty: bool = False,
    ) -> None:
        self._shards = shards
        self._functions = functions
        self._sink = sink
        self._stats = stats
        self._emit_empty = emit_empty
        #: per-shard identity -> record, awaiting the other shards
        self._books: list[dict[tuple, ShardWindowRecord]] = [
            {} for _ in range(shards)
        ]
        #: identities in shard-0 close order — the emission order
        self._order: deque[tuple] = deque()
        #: partials consumed by reduce-time merges (deterministic counter)
        self.merge_ops = 0
        self.windows_reduced = 0

    def ingest(self, shard: int, records: Sequence[ShardWindowRecord]) -> None:
        """Absorb one worker's closed windows; emit everything now ready."""
        book = self._books[shard]
        for record in records:
            identity = (
                record.group_id,
                record.ctx,
                record.start,
                record.end,
                record.query_ids,
            )
            if identity in book:
                raise EngineError(
                    f"shard {shard} closed window {identity} twice"
                )
            book[identity] = record
            if shard == 0:
                self._order.append(identity)
        self._emit_ready()

    def _emit_ready(self) -> None:
        order = self._order
        books = self._books
        while order:
            identity = order[0]
            if not all(identity in book for book in books):
                return
            order.popleft()
            records = [book.pop(identity) for book in books]
            self._reduce(identity, records)

    def _reduce(
        self, identity: tuple, records: list[ShardWindowRecord]
    ) -> None:
        self.windows_reduced += 1
        first = records[0]
        # A shard whose slice of the window was empty reports no partials
        # at all, so the merged kinds are the union across shards and each
        # kind folds only the shards that actually held events.
        kinds: list = []
        for record in records:
            for kind in record.ops:
                if kind not in kinds:
                    kinds.append(kind)
        merged = {}
        for kind in kinds:
            parts = [
                record.ops[kind] for record in records if kind in record.ops
            ]
            merged[kind] = merge_many_partials(kind, parts)
            self.merge_ops += len(parts)
        events = 0
        for record in records:
            events += record.event_count
        if events == 0 and not self._emit_empty:
            return
        emitted_at = min(record.emitted_at for record in records)
        for query_id in first.query_ids:
            value = finalize(self._functions[query_id], merged)
            self._stats.results += 1
            self._sink.emit(
                WindowResult(
                    query_id=query_id,
                    start=first.start,
                    end=first.end,
                    value=value,
                    event_count=events,
                    emitted_at=emitted_at,
                )
            )

    def finish(self) -> None:
        """Assert nothing is left dangling once every shard reported done.

        A leftover means some shard closed a window the others did not —
        a determinism bug, not a user error.
        """
        leftovers = sum(len(book) for book in self._books) + len(self._order)
        if leftovers:
            detail = [
                (shard, sorted(book)[:3])
                for shard, book in enumerate(self._books)
                if book
            ]
            raise EngineError(
                f"shard reduce finished with {leftovers} unmatched window "
                f"record(s): {detail!r}"
            )
