"""Key → shard routing for multi-core sharded execution (DESIGN.md §13).

The routing function must be:

* **stable across processes** — Python's builtin ``hash`` is salted per
  interpreter (``PYTHONHASHSEED``), so it would route the same key to
  different shards in the parent and a worker; ``zlib.crc32`` is defined
  by its polynomial and identical everywhere;
* **cheap** — it runs once per distinct key per frame on the worker's
  filter path;
* **well-spread** — crc32 of short ASCII keys distributes uniformly
  enough that the per-key workload imbalance stays within a few percent
  for the evaluation's key cardinalities.
"""

from __future__ import annotations

import zlib

__all__ = ["shard_of"]


def shard_of(key: str, shards: int) -> int:
    """The shard that owns ``key`` out of ``shards`` workers."""
    return zlib.crc32(key.encode("utf-8")) % shards
