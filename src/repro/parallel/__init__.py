"""Multi-core sharded execution (DESIGN.md §13).

:class:`ShardedEngine` partitions the event stream by key hash across N
OS worker processes, each running an independent
:class:`~repro.core.engine.AggregationEngine` over its key shard, with a
deterministic shard-ordered reduce of per-window operator partials at
window close.  Reach it through ``DesisSession(shards=N)`` or
``EngineConfig(shards=N)``; construct it directly only when driving the
:class:`~repro.baselines.api.StreamProcessor` protocol yourself.
"""

from repro.parallel.backend import ShardedEngine, ShardStats
from repro.parallel.reduce import ShardReducer
from repro.parallel.sharding import shard_of

__all__ = ["ShardReducer", "ShardedEngine", "ShardStats", "shard_of"]
