"""Sharded execution backend: N worker processes, one key shard each.

DESIGN.md §13 describes the architecture; the short version:

* The parent buffers in-order events and, every ``shard_batch_size``
  events (or at a watermark/close), encodes them **once** as a columnar
  :class:`~repro.network.messages.ShardBatchMessage` and broadcasts the
  same bytes to every worker over an OS pipe.  Broadcasting instead of
  partitioning keeps the parent's per-event cost independent of the
  shard count — the parent never hashes a key.
* Each worker decodes the columns, keeps only the rows whose key hashes
  to its shard (:func:`~repro.parallel.sharding.shard_of`), builds
  events, and runs a completely ordinary in-process
  :class:`~repro.core.engine.AggregationEngine` over them.  A
  ``window_sink`` hook intercepts every window the worker closes —
  including empty ones — and ships its raw operator partials back as
  :class:`~repro.network.messages.ShardWindowRecord` entries.
* The parent's :class:`~repro.parallel.reduce.ShardReducer` matches each
  window's N records by identity, merges the partials in shard order via
  :func:`~repro.core.operators.merge_many_partials`, and emits final
  results in shard 0's close order.

Determinism hinges on every shard running the *same* fixed-window
schedule: the first frame carries the global bootstrap origin
(``advance_before``) and every frame carries a trailing watermark
(``advance_after``), so all shards agree on slice cuts and on which
windows close within each frame.  That is also why sharded execution is
restricted to fixed **time** windows (tumbling/sliding): session, count,
and user-defined windows are properties of the *global* stream that key
partitioning destroys.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.analyzer import QueryPlan, analyze
from repro.core.config import EngineConfig
from repro.core.engine import AggregationEngine, EngineStats
from repro.core.errors import EngineError, OutOfOrderError
from repro.core.event import Event
from repro.core.query import Query
from repro.core.results import ResultSink
from repro.core.types import WindowMeasure, WindowType
from repro.network.codec import BinaryCodec
from repro.network.messages import (
    ShardBatchMessage,
    ShardResultMessage,
    ShardWindowRecord,
)
from repro.parallel.reduce import ShardReducer
from repro.parallel.sharding import shard_of

__all__ = ["ShardedEngine", "ShardStats"]

_FIXED_TIME = (WindowType.TUMBLING, WindowType.SLIDING)

#: seconds to wait for worker results at close before declaring a hang
_CLOSE_TIMEOUT_S = 120.0


@dataclass(slots=True)
class ShardStats:
    """Parent-side counters for one sharded run (``shard.*`` metrics).

    ``busy_ns``/``events``/``merge_ops`` are per-shard (reported by each
    worker with its final frame); ``peak_inflight`` is the high-water
    mark of frames sent but not yet answered per shard — the queue-depth
    signal; ``parent_ns``/``reduce_ns`` are the parent's own CPU time
    spent building/encoding frames and reducing partials (the two serial
    stages of the pipeline model, see ``benchmarks/bench_parallel.py``).
    """

    shards: int
    frames: int = 0
    events: list[int] = field(default_factory=list)
    busy_ns: list[int] = field(default_factory=list)
    merge_ops: list[int] = field(default_factory=list)
    peak_inflight: list[int] = field(default_factory=list)
    reduce_merge_ops: int = 0
    windows_reduced: int = 0
    parent_ns: int = 0
    reduce_ns: int = 0

    def __post_init__(self) -> None:
        zeros = [0] * self.shards
        if not self.events:
            self.events = list(zeros)
        if not self.busy_ns:
            self.busy_ns = list(zeros)
        if not self.merge_ops:
            self.merge_ops = list(zeros)
        if not self.peak_inflight:
            self.peak_inflight = list(zeros)


def _stats_to_dict(stats: EngineStats) -> dict[str, int]:
    return {
        f.name: getattr(stats, f.name) for f in dataclasses.fields(stats)
    }


def _attach_window_sinks(
    engine: AggregationEngine, records: list[ShardWindowRecord]
) -> None:
    """Route every closed window's raw partials into ``records``.

    The hook fires after the engine merged the window's slices but
    before finalization and the empty-window skip, so empty windows are
    reported too — the reducer needs all N records to match a window.
    Partials are shallow-copied because the store may recycle a
    single-run sorted list after release.
    """
    for runtime in engine.groups:
        group_id = runtime.group.group_id

        def sink(window, merged, events, end, _runtime=runtime, _gid=group_id):
            ops = {
                kind: (list(part) if isinstance(part, list) else part)
                for kind, part in merged.items()
            }
            stream_time = _runtime.stream_time
            records.append(
                ShardWindowRecord(
                    group_id=_gid,
                    ctx=window.ctx,
                    start=window.start,
                    end=end,
                    event_count=events,
                    emitted_at=stream_time if stream_time is not None else end,
                    query_ids=tuple(q.query_id for q in window.queries),
                    ops=ops,
                )
            )

        runtime.window_sink = sink


def _filter_events(
    msg: ShardBatchMessage, shard_id: int, shards: int
) -> list[Event]:
    """Build this shard's events out of a broadcast columnar frame."""
    table = msg.key_table
    if shards == 1:
        owner = [True] * len(table)
    else:
        owner = [shard_of(key, shards) == shard_id for key in table]
    times = msg.times
    values = msg.values
    index = msg.key_index
    out: list[Event] = []
    append = out.append
    if not msg.markers:
        for i in range(len(times)):
            k = index[i]
            if owner[k]:
                append(Event(times[i], table[k], values[i]))
    else:
        markers = dict(msg.markers)
        for i in range(len(times)):
            k = index[i]
            if owner[k]:
                append(Event(times[i], table[k], values[i], markers.get(i)))
    return out


def _worker_main(
    shard_id: int,
    shards: int,
    queries: list[Query],
    config: EngineConfig,
    recv_conn,
    send_conn,
) -> None:
    """One worker process: decode → filter → engine → ship partials."""
    codec = BinaryCodec()
    try:
        engine = AggregationEngine(queries, config=config)
        records: list[ShardWindowRecord] = []
        _attach_window_sinks(engine, records)
        busy_ns = 0
        while True:
            data = recv_conn.recv_bytes()
            started = time.process_time_ns()
            msg = codec.decode(data)
            if msg.advance_before is not None:
                engine.advance(msg.advance_before)
            if msg.times:
                events = _filter_events(msg, shard_id, shards)
                if events:
                    engine.process_batch(events)
            if msg.advance_after is not None:
                engine.advance(msg.advance_after)
            if msg.close:
                engine.close(msg.final_time)
            busy_ns += time.process_time_ns() - started
            if records or msg.close:
                reply = ShardResultMessage(
                    shard=shard_id,
                    seq=msg.seq,
                    windows=list(records),
                    done=msg.close,
                    busy_ns=busy_ns,
                    stats=_stats_to_dict(engine.stats) if msg.close else {},
                )
                records.clear()
                send_conn.send_bytes(codec.encode(reply))
            if msg.close:
                break
    except Exception as exc:  # ship the failure; a silent death hangs close()
        try:
            send_conn.send_bytes(
                codec.encode(
                    ShardResultMessage(
                        shard=shard_id,
                        seq=-1,
                        done=True,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
            )
        except Exception:
            pass
    finally:
        try:
            send_conn.close()
            recv_conn.close()
        except Exception:
            pass


class ShardedEngine:
    """Drop-in engine running N key-sharded worker processes.

    Implements the same driving protocol as
    :class:`~repro.core.engine.AggregationEngine` (and the baselines'
    :class:`~repro.baselines.api.StreamProcessor`): ``process`` /
    ``process_batch`` / ``advance`` / ``close`` / ``sink`` / ``stats``.
    Results are identical to a single-process engine over the same
    stream — byte-identical for count/extrema/sorted operator kinds,
    within 1e-9 relative for float folds (sum/product/sum-of-squares),
    because the reduce re-associates the float fold across shards.

    Restrictions (all raise :class:`~repro.core.errors.EngineError`):
    only fixed time windows (tumbling/sliding over time), no runtime
    query add/remove, no trace recorder.
    """

    name = "Desis-sharded"

    def __init__(
        self,
        queries: Iterable[Query],
        *,
        config: EngineConfig | None = None,
        sink: ResultSink | None = None,
    ) -> None:
        self.config = config if config is not None else EngineConfig()
        self.queries = list(queries)
        for query in self.queries:
            spec = query.window
            if (
                spec.window_type not in _FIXED_TIME
                or spec.measure is not WindowMeasure.TIME
            ):
                raise EngineError(
                    "sharded execution supports only fixed time windows "
                    "(tumbling/sliding over time); query "
                    f"{query.query_id!r} uses a "
                    f"{spec.window_type.value} window — session, count, "
                    "and user-defined windows are global-stream "
                    "properties that key partitioning breaks"
                )
        #: the shared query plan (parent-side copy, used for group_count
        #: and the reducer's finalize table; workers re-analyze)
        self.plan: QueryPlan = analyze(self.queries, policy=self.config.policy)
        self.sink = sink if sink is not None else ResultSink()
        self.stats = EngineStats()
        self.shard_stats = ShardStats(shards=self.config.shards)
        self._reducer = ShardReducer(
            self.config.shards,
            {q.query_id: q.function for q in self.queries},
            self.sink,
            self.stats,
            emit_empty=self.config.emit_empty,
        )
        self._codec = BinaryCodec()
        self._pending: list[Event] = []
        self._stream_time: int | None = None
        self._bootstrapped = False
        self._seq = 0
        self._closed = False
        self._procs: list = []
        self._send: list = []
        self._recv: list = []
        self._done: list[bool] = [False] * self.config.shards
        self._last_acked: list[int] = [-1] * self.config.shards

    @property
    def group_count(self) -> int:
        return len(self.plan.groups)

    # -- worker lifecycle -----------------------------------------------------

    def _ensure_workers(self) -> None:
        if self._procs:
            return
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        for shard in range(self.config.shards):
            result_recv, result_send = ctx.Pipe(duplex=False)
            frame_recv, frame_send = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    shard,
                    self.config.shards,
                    self.queries,
                    self.config,
                    frame_recv,
                    result_send,
                ),
                daemon=True,
                name=f"repro-shard-{shard}",
            )
            proc.start()
            # The parent must drop its copies of the worker-side pipe
            # ends, or a dead worker's pipe never reads as closed.
            frame_recv.close()
            result_send.close()
            self._procs.append(proc)
            self._send.append(frame_send)
            self._recv.append(result_recv)

    def _shutdown_workers(self) -> None:
        for conn in self._send + self._recv:
            try:
                conn.close()
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
        self._procs = []
        self._send = []
        self._recv = []

    # -- ingestion ------------------------------------------------------------

    def process(self, event: Event) -> None:
        """Buffer one in-order event; ships a frame at the batch size."""
        if self._closed:
            raise EngineError("engine already closed")
        stream_time = self._stream_time
        if stream_time is not None and event.time < stream_time:
            raise OutOfOrderError(
                f"event at t={event.time} arrived after stream time "
                f"{stream_time}"
            )
        self._stream_time = event.time
        self._pending.append(event)
        if len(self._pending) >= self.config.shard_batch_size:
            batch = self._pending
            self._pending = []
            self._flush(batch)

    def process_batch(self, events: Sequence[Event]) -> None:
        """Buffer an ordered batch (validated parent-side, like the engine)."""
        if self._closed:
            raise EngineError("engine already closed")
        if not isinstance(events, (list, tuple)):
            events = list(events)
        if not events:
            return
        started = time.process_time_ns()
        prev = self._stream_time
        if prev is None:
            prev = events[0].time
        for event in events:
            if event.time < prev:
                raise OutOfOrderError(
                    f"event at t={event.time} arrived after stream time "
                    f"{prev}"
                )
            prev = event.time
        self._stream_time = prev
        self._pending.extend(events)
        self.shard_stats.parent_ns += time.process_time_ns() - started
        size = self.config.shard_batch_size
        while len(self._pending) >= size:
            batch = self._pending[:size]
            self._pending = self._pending[size:]
            self._flush(batch)

    def process_many(self, events: Iterable[Event]) -> None:
        self.process_batch(
            events if isinstance(events, (list, tuple)) else list(events)
        )

    def advance(self, time_: int) -> None:
        """Apply a watermark: flush buffered events, then drain to it."""
        if self._closed:
            raise EngineError("engine already closed")
        stream_time = self._stream_time
        if stream_time is not None and time_ < stream_time:
            raise OutOfOrderError(
                f"watermark at t={time_} arrived after stream time "
                f"{stream_time}"
            )
        self._stream_time = time_
        batch = self._pending
        self._pending = []
        self._flush(batch, advance_to=time_)

    def close(self, at_time: int | None = None) -> ResultSink:
        """Flush everything, reduce every window, and join the workers."""
        if self._closed:
            raise EngineError("engine already closed")
        if at_time is not None:
            stream_time = self._stream_time
            if stream_time is not None and at_time < stream_time:
                raise OutOfOrderError(
                    f"close at t={at_time} precedes stream time {stream_time}"
                )
        self._closed = True
        final = at_time
        if final is None:
            final = self._stream_time if self._stream_time is not None else 0
        batch = self._pending
        self._pending = []
        try:
            self._flush(batch, close=True, final_time=final)
            self._drain_until_done()
            self._reducer.finish()
        finally:
            self._shutdown_workers()
        self.shard_stats.reduce_merge_ops = self._reducer.merge_ops
        self.shard_stats.windows_reduced = self._reducer.windows_reduced
        return self.sink

    # -- frames ---------------------------------------------------------------

    def _flush(
        self,
        batch: list[Event],
        *,
        advance_to: int | None = None,
        close: bool = False,
        final_time: int | None = None,
    ) -> None:
        if not batch and advance_to is None and not close:
            return
        self._ensure_workers()
        started = time.process_time_ns()
        advance_before = None
        if not self._bootstrapped:
            if batch:
                advance_before = batch[0].time
            elif advance_to is not None:
                advance_before = advance_to
            elif close:
                advance_before = final_time
            if advance_before is not None:
                self._bootstrapped = True
        advance_after = advance_to
        if advance_after is None and batch and not close:
            advance_after = batch[-1].time
        times = [event.time for event in batch]
        values = [event.value for event in batch]
        table_index: dict[str, int] = {}
        key_index: list[int] = []
        for event in batch:
            slot = table_index.get(event.key)
            if slot is None:
                slot = len(table_index)
                table_index[event.key] = slot
            key_index.append(slot)
        markers = [
            (row, event.marker)
            for row, event in enumerate(batch)
            if event.marker is not None
        ]
        message = ShardBatchMessage(
            seq=self._seq,
            advance_before=advance_before,
            advance_after=advance_after,
            close=close,
            final_time=final_time,
            times=times,
            values=values,
            key_table=list(table_index),
            key_index=key_index,
            markers=markers,
        )
        self._seq += 1
        frame = self._codec.encode(message)
        for conn in self._send:
            conn.send_bytes(frame)
        self.shard_stats.frames += 1
        stats = self.shard_stats
        for shard in range(self.config.shards):
            inflight = self._seq - 1 - self._last_acked[shard]
            if inflight > stats.peak_inflight[shard]:
                stats.peak_inflight[shard] = inflight
        stats.parent_ns += time.process_time_ns() - started
        self._poll_results()

    # -- results --------------------------------------------------------------

    def _poll_results(self) -> None:
        """Opportunistically drain worker replies (keeps pipes shallow)."""
        for shard, conn in enumerate(self._recv):
            while not self._done[shard] and conn.poll(0):
                self._handle_result(shard, conn.recv_bytes())

    def _handle_result(self, shard: int, data: bytes) -> None:
        message = self._codec.decode(data)
        if not isinstance(message, ShardResultMessage):
            raise EngineError(
                f"unexpected frame from shard {shard}: "
                f"{type(message).__name__}"
            )
        if message.error:
            raise EngineError(f"shard {shard} worker failed: {message.error}")
        if message.seq > self._last_acked[shard]:
            self._last_acked[shard] = message.seq
        started = time.process_time_ns()
        if message.windows:
            self._reducer.ingest(shard, message.windows)
        self.shard_stats.reduce_ns += time.process_time_ns() - started
        if message.done:
            self._done[shard] = True
            self.shard_stats.busy_ns[shard] = message.busy_ns
            if message.stats:
                worker = EngineStats(**message.stats)
                self.shard_stats.events[shard] = worker.events
                self.shard_stats.merge_ops[shard] = worker.merge_ops
                self.stats.merge(worker)

    def _drain_until_done(self) -> None:
        deadline = time.monotonic() + _CLOSE_TIMEOUT_S
        while not all(self._done):
            progressed = False
            for shard, conn in enumerate(self._recv):
                if self._done[shard]:
                    continue
                if conn.poll(0.05):
                    self._handle_result(shard, conn.recv_bytes())
                    progressed = True
            if progressed:
                continue
            for shard, proc in enumerate(self._procs):
                if not self._done[shard] and not proc.is_alive():
                    raise EngineError(
                        f"shard {shard} worker died without reporting"
                    )
            if time.monotonic() > deadline:
                raise EngineError(
                    "timed out waiting for shard workers to close"
                )
