"""Plain-text result tables mirroring the paper's figures."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["print_table", "fmt_rate", "fmt_ms"]


def fmt_rate(events_per_second: float) -> str:
    """Format an event rate the way the paper reports it."""
    if events_per_second >= 1e6:
        return f"{events_per_second / 1e6:.2f} M ev/s"
    if events_per_second >= 1e3:
        return f"{events_per_second / 1e3:.1f} K ev/s"
    return f"{events_per_second:.0f} ev/s"


def fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f} ms"


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[object]]) -> None:
    """Print an aligned table with a title rule."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    print()
    print(f"=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in materialized:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
