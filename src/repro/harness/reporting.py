"""Plain-text result tables mirroring the paper's figures.

Every table printed through :func:`print_table` is also offered to the
registered *table collectors* — hooks the observability exporters use to
capture benchmark output as structured data (``--metrics-out``) without
each benchmark learning about files.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

__all__ = [
    "print_table",
    "render_table",
    "add_table_collector",
    "remove_table_collector",
    "fmt_rate",
    "fmt_ms",
]

#: callables receiving ``(title, headers, rows)`` for every printed table
_collectors: list[Callable[[str, list[str], list[list[str]]], None]] = []


def add_table_collector(
    collector: Callable[[str, list[str], list[list[str]]], None]
) -> None:
    """Register a hook that observes every table ``print_table`` emits."""
    _collectors.append(collector)


def remove_table_collector(
    collector: Callable[[str, list[str], list[list[str]]], None]
) -> None:
    if collector in _collectors:
        _collectors.remove(collector)


def fmt_rate(events_per_second: float) -> str:
    """Format an event rate the way the paper reports it."""
    if events_per_second >= 1e6:
        return f"{events_per_second / 1e6:.2f} M ev/s"
    if events_per_second >= 1e3:
        return f"{events_per_second / 1e3:.1f} K ev/s"
    return f"{events_per_second:.0f} ev/s"


def fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f} ms"


def render_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned table with a title rule as a string."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    out = ["", f"=== {title} ===", line, "-" * len(line)]
    for row in materialized:
        out.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(out)


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[object]]) -> None:
    """Print an aligned table with a title rule."""
    materialized = [[str(cell) for cell in row] for row in rows]
    for collector in _collectors:
        collector(title, [str(h) for h in headers], materialized)
    print(render_table(title, headers, materialized))
