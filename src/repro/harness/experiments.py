"""Shared experiment runners used by the benchmark suite and examples.

These encode the recurring experimental shapes of Section 6: replay a
workload through each system, collect throughput / latency / work
counters, and hand back comparable records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.baselines.api import StreamProcessor
from repro.core.event import Event
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction
from repro.metrics.latency import LatencyProbe, LatencySummary
from repro.metrics.throughput import ThroughputResult, measure_throughput

__all__ = [
    "CentralRunStats",
    "run_processor",
    "run_systems",
    "tumbling_queries",
    "quantile_queries",
]


@dataclass(slots=True)
class CentralRunStats:
    """One system's outcome on one centralized workload."""

    name: str
    throughput: ThroughputResult
    calculations: int
    slices: int
    results: int
    latency: LatencySummary | None = None

    @property
    def events_per_second(self) -> float:
        return self.throughput.events_per_second


def run_processor(
    factory: Callable[[list[Query]], StreamProcessor],
    queries: Sequence[Query],
    events: list[Event],
    *,
    measure_latency: bool = False,
    latency_sample_every: int = 100,
) -> CentralRunStats:
    """Replay ``events`` through a fresh processor and collect its stats."""
    queries = list(queries)
    if measure_latency:
        probe = LatencyProbe(sample_every=latency_sample_every)
        processor = factory(queries, sink=probe)  # type: ignore[call-arg]
        ingest = probe.on_ingest
        process = processor.process
        import time as _time

        started = _time.perf_counter()
        for event in events:
            ingest(event)
            process(event)
        processed = _time.perf_counter()
        processor.close()
        closed = _time.perf_counter()
        throughput = ThroughputResult(
            events=len(events),
            seconds=closed - started,
            results=processor.sink.count,
            process_seconds=processed - started,
            close_seconds=closed - processed,
        )
        latency = probe.summary()
    else:
        processor = factory(queries)
        throughput = measure_throughput(processor, events)
        latency = None
    return CentralRunStats(
        name=getattr(processor, "name", factory.__name__),
        throughput=throughput,
        calculations=processor.stats.calculations,
        slices=processor.stats.slices_closed,
        results=processor.sink.count,
        latency=latency,
    )


def run_systems(
    systems: dict[str, Callable],
    queries: Sequence[Query],
    events: list[Event],
    **kwargs,
) -> list[CentralRunStats]:
    """Run every system of Sec 6.1.1 on the same workload."""
    return [
        run_processor(factory, queries, events, **kwargs)
        for factory in systems.values()
    ]


def tumbling_queries(
    n: int,
    fn: AggFunction = AggFunction.AVERAGE,
    *,
    min_length_ms: int = 1_000,
    max_length_ms: int = 10_000,
    quantile: float | None = None,
) -> list[Query]:
    """``n`` tumbling queries with equally distributed lengths (Sec 6.2.1:
    "windows that have equally distributed lengths from 1 to 10 seconds").

    Lengths cycle over whole multiples of ``min_length_ms``, so every
    window boundary falls on the 1-second punctuation grid and concurrent
    windows share slices fully (the Fig 8b "constant slices" effect).
    """
    steps = max(max_length_ms // min_length_ms, 1)
    queries = []
    for i in range(n):
        length = min_length_ms * (i % steps + 1)
        queries.append(
            Query.of(f"q{i}", WindowSpec.tumbling(length), fn, quantile=quantile)
        )
    return queries


def quantile_queries(n: int, *, length_ms: int = 1_000) -> list[Query]:
    """``n`` distinct quantile queries (Fig 9c: values spread 1..1000)."""
    return [
        Query.of(
            f"q{i}",
            WindowSpec.tumbling(length_ms),
            AggFunction.QUANTILE,
            quantile=(i % 999 + 1) / 1_000,
        )
        for i in range(n)
    ]
