"""Experiment harnesses and result reporting."""

from repro.harness.experiments import (
    CentralRunStats,
    quantile_queries,
    run_processor,
    run_systems,
    tumbling_queries,
)
from repro.harness.reporting import fmt_ms, fmt_rate, print_table

__all__ = [
    "CentralRunStats",
    "fmt_ms",
    "fmt_rate",
    "print_table",
    "quantile_queries",
    "run_processor",
    "run_systems",
    "tumbling_queries",
]
