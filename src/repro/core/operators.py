"""Shared aggregate operators (Sec 4.2.1, Table 1).

An *operator* is the smallest unit of aggregation work the engine executes.
Aggregation functions are broken into operators so that queries with
different functions can still share per-event work: an ``average`` and a
``sum`` query over the same slice both read the one shared ``sum`` operator.

Each operator has two representations:

* a mutable *state* (:class:`SumState` etc.) updated once per event inside
  the currently open slice, and
* an immutable *partial result* produced when the slice is terminated.

Partial results are plain Python values (floats, ints, tuples, lists) so
they can be merged associatively across slices and across nodes, and can be
serialized by :mod:`repro.network.codec`:

=========================  =======================================
operator                   partial result
=========================  =======================================
``SUM``                    ``float`` (identity ``0.0``)
``COUNT``                  ``int`` (identity ``0``)
``MULTIPLICATION``         ``float`` (identity ``1.0``)
``DECOMPOSABLE_SORT``      ``(min, max)`` tuple or ``None`` if empty
``NON_DECOMPOSABLE_SORT``  sorted ``list[float]`` (identity ``[]``)
=========================  =======================================

The decomposable sort drops events as it goes (it only keeps the running
extrema) and can be shared between ``min`` and ``max``.  The non-decomposable
sort keeps every value and sorts on slice termination; its result can be
shared between ``min``, ``max``, ``median``, and ``quantile``.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, Sequence

from repro.core.errors import EngineError
from repro.core.types import OperatorKind

__all__ = [
    "SumState",
    "CountState",
    "MultiplicationState",
    "DecomposableSortState",
    "NonDecomposableSortState",
    "SumOfSquaresState",
    "OperatorSetState",
    "make_state",
    "empty_partial",
    "merge_partials",
    "merge_many_partials",
]


class SumState:
    """Running sum of inserted values."""

    __slots__ = ("total",)
    kind = OperatorKind.SUM

    def __init__(self) -> None:
        self.total = 0.0

    def insert(self, value: float) -> None:
        self.total += value

    def insert_many(self, values: Sequence[float]) -> None:
        # Sequential accumulation in a local: bit-identical to repeated
        # insert() (float addition is order-sensitive), one write-back.
        total = self.total
        for value in values:
            total += value
        self.total = total

    def partial(self) -> float:
        return self.total


class CountState:
    """Running count of inserted values."""

    __slots__ = ("count",)
    kind = OperatorKind.COUNT

    def __init__(self) -> None:
        self.count = 0

    def insert(self, value: float) -> None:
        self.count += 1

    def insert_many(self, values: Sequence[float]) -> None:
        self.count += len(values)

    def partial(self) -> int:
        return self.count


class MultiplicationState:
    """Running product of inserted values (for product / geometric mean)."""

    __slots__ = ("product",)
    kind = OperatorKind.MULTIPLICATION

    def __init__(self) -> None:
        self.product = 1.0

    def insert(self, value: float) -> None:
        self.product *= value

    def insert_many(self, values: Sequence[float]) -> None:
        product = self.product
        for value in values:
            product *= value
        self.product = product

    def partial(self) -> float:
        return self.product


class DecomposableSortState:
    """Incremental sort that drops events: keeps only the running extrema."""

    __slots__ = ("lo", "hi")
    kind = OperatorKind.DECOMPOSABLE_SORT

    def __init__(self) -> None:
        self.lo: float | None = None
        self.hi: float | None = None

    def insert(self, value: float) -> None:
        if self.lo is None:
            self.lo = value
            self.hi = value
            return
        if value < self.lo:
            self.lo = value
        elif value > self.hi:  # type: ignore[operator]
            self.hi = value

    def insert_many(self, values: Sequence[float]) -> None:
        # The same comparison sequence as repeated insert() (min()/max()
        # would treat NaNs differently), run on locals.
        lo = self.lo
        hi = self.hi
        for value in values:
            if lo is None:
                lo = value
                hi = value
            elif value < lo:
                lo = value
            elif value > hi:
                hi = value
        self.lo = lo
        self.hi = hi

    def partial(self) -> tuple[float, float] | None:
        if self.lo is None:
            return None
        return (self.lo, self.hi)  # type: ignore[return-value]


class SumOfSquaresState:
    """Running sum of squared values (backs variance and stddev).

    An example of the paper's user-defined operators: a new basic operator
    lets new algebraic functions share per-event work with the built-ins
    (variance reuses the shared ``sum`` and ``count``).
    """

    __slots__ = ("total",)
    kind = OperatorKind.SUM_OF_SQUARES

    def __init__(self) -> None:
        self.total = 0.0

    def insert(self, value: float) -> None:
        self.total += value * value

    def insert_many(self, values: Sequence[float]) -> None:
        total = self.total
        for value in values:
            total += value * value
        self.total = total

    def partial(self) -> float:
        return self.total


class NonDecomposableSortState:
    """Full sort executed lazily when the slice terminates.

    Values are buffered unsorted during the slice; :meth:`partial` sorts once.
    Downstream merges (across slices or nodes) merge already-sorted runs.
    """

    __slots__ = ("values",)
    kind = OperatorKind.NON_DECOMPOSABLE_SORT

    def __init__(self) -> None:
        self.values: list[float] = []

    def insert(self, value: float) -> None:
        self.values.append(value)

    def insert_many(self, values: Sequence[float]) -> None:
        self.values.extend(values)

    def partial(self) -> list[float]:
        self.values.sort()
        return self.values


_STATE_FACTORIES = {
    OperatorKind.SUM: SumState,
    OperatorKind.COUNT: CountState,
    OperatorKind.MULTIPLICATION: MultiplicationState,
    OperatorKind.DECOMPOSABLE_SORT: DecomposableSortState,
    OperatorKind.NON_DECOMPOSABLE_SORT: NonDecomposableSortState,
    OperatorKind.SUM_OF_SQUARES: SumOfSquaresState,
}

_EMPTY_PARTIALS: dict[OperatorKind, Any] = {
    OperatorKind.SUM: 0.0,
    OperatorKind.COUNT: 0,
    OperatorKind.MULTIPLICATION: 1.0,
    OperatorKind.DECOMPOSABLE_SORT: None,
    OperatorKind.NON_DECOMPOSABLE_SORT: [],
    OperatorKind.SUM_OF_SQUARES: 0.0,
}


def make_state(kind: OperatorKind):
    """Create a fresh mutable state for ``kind``."""
    try:
        return _STATE_FACTORIES[kind]()
    except KeyError:
        raise EngineError(f"unknown operator kind: {kind!r}") from None


def empty_partial(kind: OperatorKind) -> Any:
    """The identity partial result for ``kind`` (merging with it is a no-op)."""
    value = _EMPTY_PARTIALS[kind]
    if kind is OperatorKind.NON_DECOMPOSABLE_SORT:
        return []  # fresh list: callers may extend partials in place
    return value


def merge_partials(kind: OperatorKind, left: Any, right: Any) -> Any:
    """Merge two partial results of the same operator kind.

    Merging is associative and commutative with :func:`empty_partial` as the
    identity, which is what makes decentralized aggregation correct: partials
    can be combined in any tree shape (Sec 5.1).
    """
    if kind is OperatorKind.SUM or kind is OperatorKind.SUM_OF_SQUARES:
        return left + right
    if kind is OperatorKind.COUNT:
        return left + right
    if kind is OperatorKind.MULTIPLICATION:
        return left * right
    if kind is OperatorKind.DECOMPOSABLE_SORT:
        if left is None:
            return right
        if right is None:
            return left
        return (min(left[0], right[0]), max(left[1], right[1]))
    if kind is OperatorKind.NON_DECOMPOSABLE_SORT:
        if not left:
            return right
        if not right:
            return left
        return list(heapq.merge(left, right))
    raise EngineError(f"unknown operator kind: {kind!r}")


def merge_many_partials(kind: OperatorKind, parts: Iterable[Any]) -> Any:
    """Merge an iterable of partial results of the same kind.

    For the non-decomposable sort this performs one k-way merge of all sorted
    runs instead of repeated pairwise merges.  Single-element lists skip the
    fold entirely (``x + 0.0`` is bit-identical to ``sum([x], 0.0)``,
    including for ``-0.0``), the common case for tumbling windows.
    """
    if kind is OperatorKind.SUM or kind is OperatorKind.SUM_OF_SQUARES:
        if isinstance(parts, list) and len(parts) == 1:
            return parts[0] + 0.0
        return sum(parts, 0.0)
    if kind is OperatorKind.COUNT:
        if isinstance(parts, list) and len(parts) == 1:
            return parts[0] + 0
        return sum(parts, 0)
    if kind is OperatorKind.MULTIPLICATION:
        product = 1.0
        for part in parts:
            product *= part
        return product
    if kind is OperatorKind.DECOMPOSABLE_SORT:
        # Inline (min, max) fold — same comparisons as the pairwise
        # ``merge_partials`` chain, without the per-pair dispatch.
        lo = hi = None
        for part in parts:
            if part is None:
                continue
            if lo is None:
                lo, hi = part
            else:
                plo, phi = part
                if plo < lo:
                    lo = plo
                if phi > hi:
                    hi = phi
        return None if lo is None else (lo, hi)
    if kind is OperatorKind.NON_DECOMPOSABLE_SORT:
        runs = [part for part in parts if part]
        if not runs:
            return []
        if len(runs) == 1:
            return runs[0]
        return list(heapq.merge(*runs))
    raise EngineError(f"unknown operator kind: {kind!r}")


class OperatorSetState:
    """The shared operator states of one selection context in one slice.

    ``insert`` applies an event's value to every operator exactly once; this
    is the paper's core sharing mechanism — no matter how many queries need
    a ``sum``, the slice holds a single :class:`SumState`.
    """

    __slots__ = ("kinds", "states", "inserts")

    def __init__(self, kinds: Sequence[OperatorKind]) -> None:
        self.kinds = tuple(kinds)
        self.states = tuple(make_state(kind) for kind in kinds)
        self.inserts = 0

    def insert(self, value: float) -> None:
        self.inserts += 1
        for state in self.states:
            state.insert(value)

    def insert_many(self, values: Sequence[float]) -> None:
        """Apply a run of values to every operator.

        Equivalent to repeated :meth:`insert` — including float rounding,
        since every state accumulates in the same order — but each state
        pays the Python dispatch once per run instead of once per event.
        """
        self.inserts += len(values)
        for state in self.states:
            state.insert_many(values)

    def partials(self) -> dict[OperatorKind, Any]:
        """Freeze this state set into per-operator partial results."""
        return {state.kind: state.partial() for state in self.states}

    @property
    def calculations(self) -> int:
        """Operator executions performed so far (inserts × operators)."""
        return self.inserts * len(self.states)
