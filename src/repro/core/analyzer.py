"""The query analyzer: forming query-groups (Sec 3.1, 4.2.3, 5.2).

The analyzer turns a set of queries into *query-groups* — sets of queries
whose partial results can be shared so that every event is processed once
per group.  Grouping is constrained by three rules:

1. **Selections** must pairwise fully overlap or not overlap at all
   (:func:`repro.core.predicates.compatible`).
2. **Sharing policy**: Desis (``FULL``) shares across window types,
   measures, and functions; the Scotty and DeSW baselines additionally split
   by function (and measure), and ``NONE`` isolates every query
   (Sec 6.1.1 / 6.3).
3. **Decentralized placement** (Sec 5.2): a group is either pushed down
   (decomposable functions with time-based windows) or evaluated at the
   root (count-based windows and non-decomposable functions, whose raw —
   but locally sorted — values must reach the root anyway).  In
   decentralized mode the two classes never mix; centralized processing
   ignores the distinction.

The resulting :class:`QueryGroup` doubles as the paper's *window attributes*
that the root broadcasts to all nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.errors import QueryError
from repro.core.functions import plan_operators
from repro.core.predicates import Selection, SelectionRouter, compatible
from repro.core.query import Query
from repro.core.types import OperatorKind, SharingPolicy, WindowMeasure

__all__ = ["QueryGroup", "QueryPlan", "analyze"]


@dataclass(slots=True)
class QueryGroup:
    """A set of queries that share slices and operators.

    Attributes:
        group_id: index of the group within its plan.
        queries: member queries, in submission order.
        operators: the planned shared operator kinds (Table 1 union).
        selections: distinct selection predicates; each becomes one
            selection operator with its own per-slice partial results.
        context_of: query id -> index into ``selections``.
        root_evaluated: in decentralized mode, whether windows of this
            group are evaluated at the root from shipped (sorted) values.
        needs_timestamps: whether shipped values must carry event times
            (required when the group contains count-based windows, whose
            ends only the root can determine).
    """

    group_id: int
    queries: list[Query] = field(default_factory=list)
    operators: tuple[OperatorKind, ...] = ()
    selections: list[Selection] = field(default_factory=list)
    context_of: dict[str, int] = field(default_factory=dict)
    root_evaluated: bool = False
    needs_timestamps: bool = False

    def _context_index(self, selection: Selection) -> int:
        """Index of ``selection`` among the group's distinct selections."""
        for index, existing in enumerate(self.selections):
            if existing == selection:
                return index
        self.selections.append(selection)
        return len(self.selections) - 1

    def _admit(self, query: Query) -> None:
        self.queries.append(query)
        self.context_of[query.query_id] = self._context_index(query.selection)

    def _replan(self) -> None:
        self.operators = plan_operators(query.function for query in self.queries)
        self.needs_timestamps = any(q.is_count_based for q in self.queries)

    def build_router(self) -> SelectionRouter:
        """A key-indexed selection router over the group's current
        contexts (the batched ingestion fast path's dispatch structure).
        Callers must rebuild it whenever ``selections`` changes."""
        return SelectionRouter(self.selections)

    def remove_query(self, query_id: str) -> Query:
        """Drop a member query (runtime removal, Sec 3.2) and replan."""
        for index, query in enumerate(self.queries):
            if query.query_id == query_id:
                del self.queries[index]
                del self.context_of[query_id]
                self._replan()
                return query
        raise QueryError(f"query {query_id!r} is not in group {self.group_id}")

    def __len__(self) -> int:
        return len(self.queries)


@dataclass(slots=True)
class QueryPlan:
    """The analyzer's output: all query-groups plus lookup helpers."""

    groups: list[QueryGroup]
    policy: SharingPolicy
    decentralized: bool

    def group_of(self, query_id: str) -> QueryGroup:
        for group in self.groups:
            if query_id in group.context_of:
                return group
        raise QueryError(f"unknown query id: {query_id!r}")

    @property
    def queries(self) -> list[Query]:
        return [query for group in self.groups for query in group.queries]


def _policy_key(query: Query, policy: SharingPolicy):
    """The partition key a sharing policy imposes on top of selections."""
    if policy is SharingPolicy.FULL:
        return None
    if policy is SharingPolicy.SAME_FUNCTION:
        return query.function
    if policy is SharingPolicy.SAME_FUNCTION_AND_MEASURE:
        return (query.function, query.window.measure)
    if policy is SharingPolicy.NONE:
        return query.query_id
    raise QueryError(f"unknown sharing policy: {policy!r}")


def _placement_root(query: Query) -> bool:
    """Whether a query must be evaluated at the root in decentralized mode."""
    return not query.is_decomposable or query.window.measure is WindowMeasure.COUNT


def _fits(group: QueryGroup, query: Query, key, keys: dict[int, object]) -> bool:
    if keys[group.group_id] != key:
        return False
    return all(compatible(query.selection, existing) for existing in group.selections)


def analyze(
    queries: Iterable[Query],
    *,
    policy: SharingPolicy = SharingPolicy.FULL,
    decentralized: bool = False,
) -> QueryPlan:
    """Partition ``queries`` into query-groups under ``policy``.

    Raises :class:`QueryError` on duplicate query ids.  Grouping is greedy
    in submission order: each query joins the first group it is compatible
    with, otherwise it opens a new group.
    """
    ordered: Sequence[Query] = list(queries)
    seen_ids: set[str] = set()
    for query in ordered:
        if query.query_id in seen_ids:
            raise QueryError(f"duplicate query id: {query.query_id!r}")
        seen_ids.add(query.query_id)

    groups: list[QueryGroup] = []
    group_keys: dict[int, object] = {}
    for query in ordered:
        key = _policy_key(query, policy)
        if decentralized:
            key = (key, _placement_root(query))
        target = None
        for group in groups:
            if _fits(group, query, key, group_keys):
                target = group
                break
        if target is None:
            target = QueryGroup(group_id=len(groups))
            target.root_evaluated = decentralized and _placement_root(query)
            groups.append(target)
            group_keys[target.group_id] = key
        target._admit(query)

    for group in groups:
        group._replan()
    return QueryPlan(groups=groups, policy=policy, decentralized=decentralized)
