"""Selection predicates and query-group compatibility rules (Sec 4.2.3).

A :class:`Selection` filters the events a query aggregates: an optional key
equality (``WHERE key = 'speed'``) and an optional half-open value range
(``WHERE 25 <= value < 80``).  ``Selection()`` accepts every event.

Queries can share a query-group only if their selections *fully overlap*
(are identical) or *do not overlap* (are disjoint); partially overlapping
selections force separate groups because a shared slice could not keep the
per-query results apart (Sec 4.2.3).  :func:`compatible` implements that
rule, and :func:`selection_relation` exposes the underlying classification.

Inside a group, each distinct selection becomes one *selection operator*
executed per event; this linear scan over selection operators is what makes
local-node throughput drop with the number of distinct keys in Fig 7e (see
``benchmarks/bench_ablation.py`` for the keyed-dispatch alternative).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.core.errors import QueryError
from repro.core.event import Event

__all__ = [
    "Selection",
    "SelectionRelation",
    "SelectionRouter",
    "selection_relation",
    "compatible",
]


class SelectionRelation(enum.Enum):
    """How the event sets matched by two selections relate."""

    EQUAL = "equal"
    DISJOINT = "disjoint"
    OVERLAPPING = "overlapping"


@dataclass(slots=True, frozen=True)
class Selection:
    """A selection predicate: optional key equality plus a value range.

    Attributes:
        key: only events with this key match; ``None`` matches all keys.
        lo: inclusive lower bound on the event value; ``None`` is unbounded.
        hi: exclusive upper bound on the event value; ``None`` is unbounded.
        deduplicate: apply the paper's *deduplication* non-aggregate
            operator (Sec 4.2.3): identical events (same time, key, value,
            and marker) within a slice are aggregated only once for this
            selection context.
    """

    key: str | None = None
    lo: float | None = None
    hi: float | None = None
    deduplicate: bool = False

    def __post_init__(self) -> None:
        if self.lo is not None and self.hi is not None and self.lo >= self.hi:
            raise QueryError(
                f"empty value range: lo={self.lo!r} must be < hi={self.hi!r}"
            )

    def matches(self, event: Event) -> bool:
        """Whether ``event`` passes this selection."""
        if self.key is not None and event.key != self.key:
            return False
        if self.lo is not None and event.value < self.lo:
            return False
        if self.hi is not None and event.value >= self.hi:
            return False
        return True

    @property
    def is_pass_all(self) -> bool:
        return self.key is None and self.lo is None and self.hi is None

    def __str__(self) -> str:
        clauses = []
        if self.key is not None:
            clauses.append(f"key = {self.key!r}")
        if self.lo is not None:
            clauses.append(f"value >= {self.lo:g}")
        if self.hi is not None:
            clauses.append(f"value < {self.hi:g}")
        return " AND ".join(clauses) if clauses else "TRUE"


class SelectionRouter:
    """Key-indexed routing over a group's selection contexts.

    The per-event engine path scans every selection operator linearly (the
    cost model behind Fig 7e).  The batched ingestion fast path instead
    routes each event by its key: key-equality selections are bucketed
    under their key, while selections with no key restriction form a
    *pass-all fallback list* that every event must still consider.  An
    event therefore only touches contexts that can possibly match it; the
    remaining per-event work is the value-range check.

    Candidate lists are ``(ctx_index, lo, hi)`` tuples sorted by context
    index, so matches come out in the same order the linear scan produces
    them.  The per-key merged lists are cached; the cache is bounded by
    the number of distinct selection keys (unknown keys share the
    fallback list and are never cached).
    """

    __slots__ = ("total", "_by_key", "_fallback", "_cache")

    def __init__(self, selections: "list[Selection] | tuple[Selection, ...]") -> None:
        #: number of selection operators a linear scan would execute per
        #: event — used to keep ``selection_checks`` per-event-equivalent
        self.total = len(selections)
        by_key: dict[str, list[tuple[int, float | None, float | None]]] = {}
        fallback: list[tuple[int, float | None, float | None]] = []
        for index, selection in enumerate(selections):
            entry = (index, selection.lo, selection.hi)
            if selection.key is None:
                fallback.append(entry)
            else:
                by_key.setdefault(selection.key, []).append(entry)
        self._by_key = by_key
        self._fallback = fallback
        self._cache: dict[str, list[tuple[int, float | None, float | None]]] = {}

    def candidates(self, key: str) -> list[tuple[int, float | None, float | None]]:
        """Contexts that can match an event with ``key`` (sorted by ctx)."""
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        keyed = self._by_key.get(key)
        if keyed is None:
            return self._fallback
        merged = sorted(keyed + self._fallback) if self._fallback else keyed
        self._cache[key] = merged
        return merged

    def matches(self, event: Event) -> list[int]:
        """Context indices matching ``event`` — identical to the linear
        scan ``[i for i, s in enumerate(selections) if s.matches(event)]``."""
        value = event.value
        return [
            index
            for index, lo, hi in self.candidates(event.key)
            if (lo is None or value >= lo) and (hi is None or value < hi)
        ]


def _bounds(selection: Selection) -> tuple[float, float]:
    lo = -math.inf if selection.lo is None else selection.lo
    hi = math.inf if selection.hi is None else selection.hi
    return lo, hi


def _range_relation(a: Selection, b: Selection) -> SelectionRelation:
    """Relation of the two selections' value ranges, ignoring keys."""
    a_lo, a_hi = _bounds(a)
    b_lo, b_hi = _bounds(b)
    if a_lo == b_lo and a_hi == b_hi:
        return SelectionRelation.EQUAL
    if a_hi <= b_lo or b_hi <= a_lo:
        return SelectionRelation.DISJOINT
    return SelectionRelation.OVERLAPPING


def selection_relation(a: Selection, b: Selection) -> SelectionRelation:
    """Classify how the event sets of ``a`` and ``b`` relate."""
    if a.key is not None and b.key is not None and a.key != b.key:
        return SelectionRelation.DISJOINT
    range_rel = _range_relation(a, b)
    if a.key == b.key:
        return range_rel
    # Exactly one side restricts the key: the unrestricted side strictly
    # contains the restricted one unless their value ranges are disjoint.
    if range_rel is SelectionRelation.DISJOINT:
        return SelectionRelation.DISJOINT
    return SelectionRelation.OVERLAPPING


def compatible(a: Selection, b: Selection) -> bool:
    """Whether two selections may live in the same query-group.

    True iff the selections fully overlap (identical event sets) or do not
    overlap at all (Sec 4.2.3).  Partial overlap — including one selection
    strictly containing the other — is incompatible.
    """
    return selection_relation(a, b) is not SelectionRelation.OVERLAPPING
