"""Event and watermark records.

Events mirror the four fields of the paper's data generator (Sec 6.1.2):
``time``, ``key``, ``value``, and ``event`` (a user-defined window marker,
called ``marker`` here to avoid clashing with the class name).

Timestamps are integers in milliseconds of event time.  All engines in this
package consume streams ordered by ``time``; helpers below validate and merge
ordered streams.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.errors import OutOfOrderError

__all__ = ["Event", "Watermark", "ensure_ordered", "merge_streams"]


@dataclass(slots=True, frozen=True)
class Event:
    """A single stream event.

    Attributes:
        time: event timestamp in milliseconds (event time).
        key: the event's key, e.g. a sensor or player id.
        value: the numeric payload that aggregation functions consume.
        marker: optional user-defined window marker (e.g. ``"trip_end"``);
            ``None`` for ordinary events.
    """

    time: int
    key: str
    value: float
    marker: str | None = None


@dataclass(slots=True, frozen=True)
class Watermark:
    """A progress marker: no event with ``time < self.time`` will follow.

    Watermarks let the root node terminate session and user-defined windows
    whose ends would otherwise wait for the next event (Sec 5.1.2).
    """

    time: int


def ensure_ordered(events: Iterable[Event]) -> Iterator[Event]:
    """Yield ``events`` unchanged, raising :class:`OutOfOrderError` on regress.

    The check is per-stream and inclusive: equal timestamps are allowed,
    strictly decreasing ones are not.
    """
    last = None
    for event in events:
        if last is not None and event.time < last:
            raise OutOfOrderError(
                f"event at t={event.time} arrived after stream time {last}"
            )
        last = event.time
        yield event


def merge_streams(*streams: Iterable[Event]) -> Iterator[Event]:
    """Merge several time-ordered streams into one time-ordered stream.

    This models the event order a centralized root observes when every local
    node forwards its stream.  Ties are broken by stream index so the merge
    is deterministic.
    """
    return heapq.merge(*streams, key=lambda event: event.time)
