"""Incremental slice-merge layer: amortized O(1) merging for overlapping
fixed windows (Two-Stacks FIFO aggregation).

Desis assembles every window result by merging the partial results of the
window's covered slices.  The plain ("exact") path re-merges the full
``[first_slice, last_slice]`` range at every window close, so a sliding
window of length ``L`` and slide ``s`` pays O(L/s) merge work per window
even though consecutive windows share ``L/s - 1`` slices.  This module
removes that redundancy with the classic *Two-Stacks* FIFO-aggregation
structure (Tangwongsan et al., "In-Order Sliding-Window Aggregation in
Worst-Case Constant Time"): each closed slice is pushed once, evicted
once, and a window close costs O(1) merges regardless of overlap.

The structure is *order-preserving*: partials are always combined
oldest-to-newest, only the association changes.  That makes COUNT, the
extrema of ``DECOMPOSABLE_SORT``, and every comparison-based result
identical to the plain fold; float accumulators (SUM, MULTIPLICATION,
SUM_OF_SQUARES) may differ in the last bits because float addition and
multiplication are not associative — the documented ``merge_mode``
contract (DESIGN.md §9): ``exact`` keeps the plain fold byte-for-byte,
``incremental`` matches within 1e-9 relative.

``NON_DECOMPOSABLE_SORT`` is excluded: its partials are whole sorted
value lists, so a FIFO aggregate would have to *copy* the merged list at
every push/flip (there is no O(1) "uncombine"), making the incremental
structure strictly worse than the existing single k-way run merge.
Callers merge that kind through the plain scan and combine it with the
incremental result for the decomposable kinds.

Two cooperating layers live here:

* :class:`FifoAggregator` — one Two-Stacks instance over an ordered
  stream of partial dicts, keyed by a monotone position (slice index in
  the engine, record start time at the cluster root).
* :class:`IncrementalMergeLayer` — the engine-side registry: one
  aggregator per ``(ctx, kinds, window length)`` stream, fed lazily from
  the :class:`~repro.core.slices.SliceStore` at window close.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.operators import merge_partials
from repro.core.types import OperatorKind

__all__ = [
    "DECOMPOSABLE_MERGE_KINDS",
    "FifoAggregator",
    "IncrementalMergeLayer",
]

#: operator kinds whose partials merge in O(1) and can ride the
#: incremental structure; NON_DECOMPOSABLE_SORT partials are whole sorted
#: lists and stay on the plain k-way merge (module docstring).
DECOMPOSABLE_MERGE_KINDS = frozenset(
    (
        OperatorKind.SUM,
        OperatorKind.COUNT,
        OperatorKind.MULTIPLICATION,
        OperatorKind.SUM_OF_SQUARES,
        OperatorKind.DECOMPOSABLE_SORT,
    )
)


class FifoAggregator:
    """Two-Stacks FIFO aggregate over (position, partials, count) items.

    ``push`` appends the newest item, ``evict_below`` drops the oldest
    items, and ``query`` returns the oldest-to-newest merge of everything
    currently held — each amortized O(1) merges per item per operator
    kind.  Positions must be pushed in non-decreasing order and eviction
    bounds must be non-decreasing (both hold for window closes of one
    ``(ctx, kinds, length)`` stream: the engine closes windows in end-time
    order, and equal lengths make their first-slice positions monotone).

    Invariant (the classic two stacks): ``_front`` holds older items with
    precomputed *suffix* aggregates (top of stack = oldest item, its
    aggregate covering the whole flipped batch); ``_back`` holds newer raw
    items plus one running *prefix* aggregate.  A query merges the front
    top's suffix aggregate with the back prefix aggregate — at most one
    merge per kind.
    """

    __slots__ = (
        "kinds",
        "_front",
        "_back",
        "_back_ops",
        "_back_count",
        "floor",
        "merge_ops",
    )

    def __init__(self, kinds: Sequence[OperatorKind]) -> None:
        self.kinds = tuple(
            kind for kind in kinds if kind in DECOMPOSABLE_MERGE_KINDS
        )
        #: older items: (position, suffix-merged ops, suffix count);
        #: the list tail is the *oldest* live item
        self._front: list[tuple[Any, dict[OperatorKind, Any], int]] = []
        #: newer raw items: (position, ops, count) in arrival order
        self._back: list[tuple[Any, dict[OperatorKind, Any], int]] = []
        self._back_ops: dict[OperatorKind, Any] = {}
        self._back_count = 0
        #: highest eviction bound seen; pushes below it are caller bugs
        self.floor: Any = None
        #: cumulative ``merge_partials`` executions (the work counter the
        #: ``merge_ops`` stats are built from)
        self.merge_ops = 0

    def __len__(self) -> int:
        return len(self._front) + len(self._back)

    def push(self, pos: Any, ops: dict[OperatorKind, Any], count: int) -> None:
        """Append the newest item.  Skip items with no activity entirely —
        their partials are the merge identities."""
        self._back.append((pos, ops, count))
        self._back_count += count
        back_ops = self._back_ops
        for kind in self.kinds:
            part = ops.get(kind)
            if part is None and kind is not OperatorKind.DECOMPOSABLE_SORT:
                continue
            if kind in back_ops:
                back_ops[kind] = merge_partials(kind, back_ops[kind], part)
                self.merge_ops += 1
            else:
                back_ops[kind] = part

    def _flip(self) -> None:
        """Move the back batch into the front stack, precomputing suffix
        aggregates newest-to-oldest (so the oldest ends on top)."""
        front = self._front
        agg: dict[OperatorKind, Any] = {}
        count = 0
        kinds = self.kinds
        for pos, ops, item_count in reversed(self._back):
            for kind in kinds:
                part = ops.get(kind)
                if part is None and kind is not OperatorKind.DECOMPOSABLE_SORT:
                    continue
                if kind in agg:
                    # older ⊕ newer: keeps the oldest-to-newest order
                    agg[kind] = merge_partials(kind, part, agg[kind])
                    self.merge_ops += 1
                else:
                    agg[kind] = part
            count += item_count
            front.append((pos, dict(agg), count))
        self._back = []
        self._back_ops = {}
        self._back_count = 0

    def evict_below(self, bound: Any) -> None:
        """Drop all items with ``position < bound``."""
        if self.floor is None or bound > self.floor:
            self.floor = bound
        front = self._front
        while True:
            if front:
                if front[-1][0] < bound:
                    front.pop()
                    continue
                return
            if self._back and self._back[0][0] < bound:
                self._flip()
                continue
            return

    def query(self) -> tuple[dict[OperatorKind, Any], int]:
        """Merge everything currently held, oldest to newest.

        Returns a fresh ``{kind: partial}`` dict (kinds with no activity
        are absent, matching the plain path) and the total event count.
        """
        front = self._front
        if front:
            _, front_ops, front_count = front[-1]
            merged = dict(front_ops)
            count = front_count
        else:
            merged = {}
            count = 0
        back_ops = self._back_ops
        if back_ops:
            for kind, part in back_ops.items():
                if kind in merged:
                    merged[kind] = merge_partials(kind, merged[kind], part)
                    self.merge_ops += 1
                else:
                    merged[kind] = part
        return merged, count + self._back_count


class _SliceStream:
    """One aggregator plus its push cursor into the slice index space."""

    __slots__ = ("agg", "next_push")

    def __init__(self, kinds: Sequence[OperatorKind], first: int) -> None:
        self.agg = FifoAggregator(kinds)
        self.next_push = first


class IncrementalMergeLayer:
    """Per query-group incremental window merging over closed slices.

    One :class:`FifoAggregator` per ``(ctx, kinds, window length)``
    stream: windows of equal length over one context close in
    non-decreasing ``[first_slice, last_slice]`` order, which is exactly
    the FIFO discipline the aggregator needs.  Slices are pulled lazily
    from the group's :class:`~repro.core.slices.SliceStore` at window
    close — every covered slice is still referenced (hence stored) by the
    closing window, so nothing extra has to be retained.
    """

    __slots__ = ("_streams", "merge_ops", "windows", "slices_pushed")

    def __init__(self) -> None:
        self._streams: dict[tuple, _SliceStream] = {}
        #: cumulative merge operator executions across all streams
        self.merge_ops = 0
        #: window closes served incrementally
        self.windows = 0
        #: slice partials pushed (each slice is pushed once per stream)
        self.slices_pushed = 0

    def merge_window(
        self,
        store,
        first: int,
        last: int,
        ctx: int,
        kinds: tuple[OperatorKind, ...],
        length: int,
    ) -> tuple[dict[OperatorKind, Any], int, int] | None:
        """Merge context ``ctx``'s partials across slices ``first..last``.

        Returns ``(merged, events, pushed)`` for the decomposable kinds in
        ``kinds`` — or ``None`` when the window regressed behind this
        stream's eviction floor (the caller falls back to the plain scan;
        it cannot happen for engine-closed fixed windows, but the layer
        refuses to guess rather than return a wrong aggregate).
        """
        key = (ctx, kinds, length)
        stream = self._streams.get(key)
        if stream is None:
            stream = self._streams[key] = _SliceStream(kinds, first)
        agg = stream.agg
        if agg.floor is not None and first < agg.floor:
            return None
        before = agg.merge_ops
        agg.evict_below(first)
        pushed = 0
        start = stream.next_push
        if start < first:
            start = first  # skipped slices would be evicted immediately
        for index in range(start, last + 1):
            slice_ = store.get(index)
            if slice_ is None:
                continue
            parts = slice_.partials.get(ctx)
            if parts is None:
                continue
            agg.push(index, parts, slice_.insert_counts.get(ctx, 0))
            pushed += 1
        if last + 1 > stream.next_push:
            stream.next_push = last + 1
        merged, events = agg.query()
        self.merge_ops += agg.merge_ops - before
        self.windows += 1
        self.slices_pushed += pushed
        return merged, events, pushed

    def drop_context(self, ctx: int) -> None:
        """Forget every stream of one selection context (query removal)."""
        for key in [k for k in self._streams if k[0] == ctx]:
            del self._streams[key]
