"""The Desis aggregation engine (Sec 4).

The engine processes multiple windowed queries over one event stream while
executing every event once per query-group: queries are grouped by the
analyzer, each group's windows are cut into shared slices at window
start/end punctuations, and each slice runs the group's shared operator set
(Table 1) once per matching selection context.  When a window ends, its
result is assembled by merging the partial results of its covered slices
and finalizing its aggregation function.

Two punctuation strategies are supported:

* ``heap`` (Desis): upcoming fixed-window punctuations live in a priority
  queue, so an event only pays for punctuations that are actually due.
* ``scan`` (the Scotty/DeSW baselines of Sec 6.1.1): every event scans all
  window trackers for due punctuations, modelling engines that "check each
  arriving event" (Sec 6.2.1).

Both strategies produce identical cuts and results; they differ only in
per-event cost, which is one of the effects Figures 6 and 8 measure.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.analyzer import QueryGroup, QueryPlan, analyze
from repro.core.errors import EngineError, OutOfOrderError, QueryError
from repro.core.event import Event
from repro.core.functions import finalize, operators_for
from repro.core.incmerge import DECOMPOSABLE_MERGE_KINDS, IncrementalMergeLayer
from repro.core.operators import merge_many_partials
from repro.core.query import Query
from repro.core.results import ResultSink, WindowResult
from repro.core.slices import Slice, SliceStore
from repro.obs.tracing import NULL_RECORDER
from repro.core.types import (
    OperatorKind,
    SharingPolicy,
    WindowMeasure,
    WindowType,
)
from repro.core.windows import (
    CountWindowTracker,
    FixedWindowTracker,
    SessionWindowTracker,
    UserDefinedWindowTracker,
    WindowInstance,
)

__all__ = ["AggregationEngine", "EngineStats", "GroupRuntime", "required_kinds"]

# Heap entry tags.
_SP_FIXED = 0
_EP = 1
_SESSION_EP = 2


def required_kinds(
    query: Query, planned: Sequence[OperatorKind]
) -> tuple[OperatorKind, ...]:
    """The planned operators a query's finalizer needs.

    When the group plans a non-decomposable sort, min/max queries read it
    instead of the (subsumed) decomposable sort.
    """
    wanted = set(operators_for(query.function))
    if (
        OperatorKind.DECOMPOSABLE_SORT in wanted
        and OperatorKind.DECOMPOSABLE_SORT not in planned
    ):
        wanted.discard(OperatorKind.DECOMPOSABLE_SORT)
        wanted.add(OperatorKind.NON_DECOMPOSABLE_SORT)
    missing = wanted.difference(planned)
    if missing:
        raise EngineError(
            f"group plan {planned!r} is missing operators {missing!r} "
            f"for query {query.query_id!r}"
        )
    return tuple(kind for kind in planned if kind in wanted)


@dataclass(slots=True)
class EngineStats:
    """Work counters used throughout the evaluation (Figs 6, 8, 9, 10)."""

    events: int = 0
    inserts: int = 0
    calculations: int = 0
    selection_checks: int = 0
    slices_closed: int = 0
    windows_opened: int = 0
    windows_closed: int = 0
    results: int = 0
    duplicates_dropped: int = 0
    #: merge operator executions at window close — the work the
    #: incremental merge layer exists to shrink (partials consumed by the
    #: plain scan, ``merge_partials`` calls on the incremental path)
    merge_ops: int = 0
    #: memory high-water marks (Sec 2.3's motivation for slicing)
    peak_live_slices: int = 0
    peak_open_windows: int = 0

    def merge(self, other: "EngineStats") -> None:
        self.events += other.events
        self.inserts += other.inserts
        self.calculations += other.calculations
        self.selection_checks += other.selection_checks
        self.slices_closed += other.slices_closed
        self.windows_opened += other.windows_opened
        self.windows_closed += other.windows_closed
        self.results += other.results
        self.duplicates_dropped += other.duplicates_dropped
        self.merge_ops += other.merge_ops
        self.peak_live_slices = max(self.peak_live_slices, other.peak_live_slices)
        self.peak_open_windows = max(
            self.peak_open_windows, other.peak_open_windows
        )


class GroupRuntime:
    """Execution state of one query-group.

    The runtime owns the group's slice store, open windows, punctuation
    heap, and window trackers.  It can also run in *slicing-only* mode
    (``assemble=False``), in which closed slices and window punctuations
    are handed to a slice sink instead of being assembled into results —
    this is how local nodes reuse the engine in decentralized aggregation
    (Sec 5.1).
    """

    def __init__(
        self,
        group: QueryGroup,
        sink: ResultSink,
        stats: EngineStats,
        *,
        punctuation_mode: str = "heap",
        emit_empty: bool = False,
        assemble: bool = True,
        slice_sink=None,
        window_sink=None,
        track_spans: bool = False,
        recorder=None,
        node_id: str = "",
        merge_mode: str = "incremental",
    ) -> None:
        if punctuation_mode not in ("heap", "scan"):
            raise EngineError(f"unknown punctuation mode: {punctuation_mode!r}")
        if merge_mode not in ("incremental", "exact"):
            raise EngineError(f"unknown merge mode: {merge_mode!r}")
        self.group = group
        self.sink = sink
        self.stats = stats
        #: slice-lifecycle trace recorder; the shared no-op unless tracing
        #: was opted into (see repro.obs.tracing)
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.node_id = node_id
        self.mode = punctuation_mode
        self.emit_empty = emit_empty
        self.assemble = assemble
        self.merge_mode = merge_mode
        #: Two-Stacks running aggregates over closed slices, shared by all
        #: overlapping fixed windows of a (ctx, kinds, length) stream;
        #: ``None`` keeps every close on the plain full-range scan
        #: (``merge_mode="exact"``, byte-identical to the pre-layer path).
        self.incmerge: IncrementalMergeLayer | None = (
            IncrementalMergeLayer()
            if assemble and merge_mode == "incremental"
            else None
        )
        #: called at every cut with (closed_slice, eps, spans); eps are
        #: (window, end_time) pairs and spans maps ctx -> [first, last]
        #: matching-event times inside the closed slice (when track_spans).
        self.slice_sink = slice_sink
        #: when set, closed windows are handed over as
        #: (window, merged_ops, event_count, end_time) instead of being
        #: finalized into results (Disco's per-window partials).
        self.window_sink = window_sink
        self.track_spans = track_spans
        self._spans: dict[int, list[int]] = {}

        self.selections = list(group.selections)
        #: key-indexed selection routing used by the batched fast path;
        #: the per-event path keeps the linear scan (its cost model)
        self._router = group.build_router()
        #: selection contexts carrying the deduplication operator
        self._dedup_ctxs = frozenset(
            index
            for index, selection in enumerate(self.selections)
            if selection.deduplicate
        )
        #: per-open-slice seen-event sets for deduplicating contexts
        self._dedup_seen: dict[int, set] = {}
        self.operators = group.operators
        self.needed: dict[str, tuple[OperatorKind, ...]] = {
            query.query_id: required_kinds(query, group.operators)
            for query in group.queries
        }

        self.fixed: list[FixedWindowTracker] = []
        self.sessions: list[SessionWindowTracker] = []
        self.userdef: list[UserDefinedWindowTracker] = []
        self.counts: list[CountWindowTracker] = []
        #: user-defined trackers with no open window: the only ones that
        #: must be checked for opens on every event
        self._userdef_closed: list[UserDefinedWindowTracker] = []
        #: window deduplication (see repro.core.windows): queries sharing a
        #: window spec and selection context share one tracker
        self._tracker_index: dict[tuple, object] = {}
        for query in group.queries:
            self._add_trackers(query)

        self._heap: list[tuple[int, int, int, object]] = []
        #: scan mode: cached earliest due punctuation time (may be early,
        #: never late); None forces a rescan on the next event.
        self._scan_next: int | None = None
        self._seq = 0
        self.open_windows: dict[int, WindowInstance] = {}
        self._uid = 0
        self.store = SliceStore()
        self.current = Slice(index=0, start=0)
        self.stream_time: int | None = None
        self._bootstrapped = False
        #: cumulative count of slices closed by this group (its local slice
        #: ids in the decentralized protocol, Sec 5.1.1)
        self.slice_seq = 0

    # -- query lifecycle ------------------------------------------------------

    def _add_trackers(self, query: Query) -> bool:
        """Attach ``query`` to its (possibly shared) tracker.

        Returns True when a new tracker was created; queries whose window
        spec and selection context match an existing tracker simply
        subscribe to it (window deduplication).
        """
        ctx = self.group.context_of[query.query_id]
        key = (query.window, ctx)
        existing = self._tracker_index.get(key)
        if existing is not None:
            existing.subscribe(query)
            return False
        kind = query.window.window_type
        if query.window.measure is WindowMeasure.COUNT:
            tracker = CountWindowTracker(query, ctx)
            self.counts.append(tracker)
        elif kind in (WindowType.TUMBLING, WindowType.SLIDING):
            tracker = FixedWindowTracker(query, ctx)
            self.fixed.append(tracker)
        elif kind is WindowType.SESSION:
            tracker = SessionWindowTracker(query, ctx)
            self.sessions.append(tracker)
        elif kind is WindowType.USER_DEFINED:
            tracker = UserDefinedWindowTracker(query, ctx)
            self.userdef.append(tracker)
            self._userdef_closed.append(tracker)
        else:  # pragma: no cover - enum is exhaustive
            raise QueryError(f"unsupported window type: {kind!r}")
        self._tracker_index[key] = tracker
        return True

    def add_query(self, query: Query) -> None:
        """Attach a query at runtime (Sec 3.2); it joins at stream time.

        A query matching an existing tracker subscribes to it and starts
        receiving results from the next window that tracker opens.
        """
        self.needed[query.query_id] = required_kinds(query, self.group.operators)
        created = self._add_trackers(query)
        self._scan_next = None  # the new query may punctuate earlier
        if created and self._bootstrapped:
            tracker = self._tracker_of(query.query_id)
            if isinstance(tracker, FixedWindowTracker):
                start = tracker.bootstrap(self.stream_time or 0)
                if self.mode == "heap":
                    self._push(start, _SP_FIXED, tracker)

    def refresh_selections(self) -> None:
        """Re-sync selections (and their routing index) with the group.

        Called after runtime query admission changes the group's distinct
        selection contexts.
        """
        self.selections = list(self.group.selections)
        self._router = self.group.build_router()

    def remove_query(self, query_id: str, *, drain: bool = False) -> None:
        """Detach a query (Sec 3.2).

        With ``drain=False`` (remove "immediately") the query's open
        windows are discarded too; with ``drain=True`` ("wait for the
        last window to end") already-open windows still produce their
        results, but no new windows include the query.

        Stale heap punctuations for the query are ignored when they fire
        (start punctuations check tracker membership, end punctuations
        check the open-window table).
        """
        tracker = self._tracker_of(query_id)
        if tracker.unsubscribe(query_id):
            # Last subscriber gone: stop opening new windows entirely.
            for bucket in (self.fixed, self.sessions, self.userdef, self.counts):
                if tracker in bucket:
                    bucket.remove(tracker)
            if tracker in self._userdef_closed:
                self._userdef_closed.remove(tracker)
            self._tracker_index.pop((tracker.spec, tracker.ctx), None)
        if drain:
            # Open windows keep their subscriber snapshot; ``needed`` must
            # outlive them for result finalization at close.
            return
        for window in list(self.open_windows.values()):
            if not any(q.query_id == query_id for q in window.queries):
                continue
            window.queries = tuple(
                q for q in window.queries if q.query_id != query_id
            )
            if not window.queries:
                del self.open_windows[window.uid]
                # Release slice references the discarded window still held.
                self.store.release(window.first_slice, self.current.index - 1)
        self.needed.pop(query_id, None)

    def _tracker_of(self, query_id: str):
        for bucket in (self.fixed, self.sessions, self.userdef, self.counts):
            for tracker in bucket:
                if tracker.serves(query_id):
                    return tracker
        raise QueryError(f"query {query_id!r} has no tracker in this group")

    # -- punctuation heap -----------------------------------------------------

    def _push(self, time: int, tag: int, payload: object) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, tag, payload))

    def _bootstrap(self, origin: int) -> None:
        self._bootstrapped = True
        self.current.start = origin
        for tracker in self.fixed:
            start = tracker.bootstrap(origin)
            if self.mode == "heap":
                self._push(start, _SP_FIXED, tracker)

    # -- window lifecycle -----------------------------------------------------

    def _open_window(
        self, queries: tuple[Query, ...], ctx: int, start: int,
        end: int | None, start_count: int = 0, slide: int | None = None
    ) -> WindowInstance:
        self._uid += 1
        window = WindowInstance(
            uid=self._uid,
            queries=queries,
            ctx=ctx,
            start=start,
            end=end,
            first_slice=self.current.index,
            start_count=start_count,
            slide=slide,
        )
        self.open_windows[window.uid] = window
        self.stats.windows_opened += 1
        if len(self.open_windows) > self.stats.peak_open_windows:
            self.stats.peak_open_windows = len(self.open_windows)
        return window

    def _close_window(self, window: WindowInstance, end: int, last_slice: int) -> None:
        self.open_windows.pop(window.uid, None)
        self.stats.windows_closed += 1
        window.end = end
        if not self.assemble:
            self.store.release(window.first_slice, last_slice)
            return
        # Merge the union of the subscribers' operators once; finalize (and
        # materialize a result) per subscribed query — the only per-query
        # cost of a deduplicated window.
        needed = self.needed
        if len(window.queries) == 1:
            kinds = needed[window.queries[0].query_id]
        else:
            union = set()
            for query in window.queries:
                union.update(needed[query.query_id])
            kinds = tuple(kind for kind in self.operators if kind in union)
        merged = self._merge_window(window, end, last_slice, kinds)
        if merged is None:
            merged, events, merge_ops = self.store.merge_context_partials(
                window.first_slice, last_slice, window.ctx, kinds,
                merge_many_partials,
            )
            self.stats.merge_ops += merge_ops
        else:
            merged, events = merged
        self.store.release(window.first_slice, last_slice)
        if self.window_sink is not None:
            self.window_sink(window, merged, events, end)
            return
        if events == 0 and not self.emit_empty:
            return
        emitted_at = self.stream_time if self.stream_time is not None else end
        for query in window.queries:
            value = finalize(query.function, merged)
            self.stats.results += 1
            if self.recorder.enabled:
                self.recorder.record(
                    "window.emit",
                    emitted_at,
                    node=self.node_id,
                    group=self.group.group_id,
                    query_id=query.query_id,
                    start=window.start,
                    end=end,
                    event_count=events,
                    first_slice=window.first_slice,
                    last_slice=last_slice,
                )
            self.sink.emit(
                WindowResult(
                    query_id=query.query_id,
                    start=window.start,
                    end=end,
                    value=value,
                    event_count=events,
                    emitted_at=emitted_at,
                )
            )

    def _merge_window(
        self,
        window: WindowInstance,
        end: int,
        last_slice: int,
        kinds: tuple[OperatorKind, ...],
    ) -> tuple[dict, int] | None:
        """Try the incremental merge layer; ``None`` means plain scan.

        Only *overlapping* fixed windows qualify: tumbling windows
        (``slide == length``) share no slices between instances, so the
        plain scan already touches each slice once and the Two-Stacks
        machinery would be pure overhead; data-driven windows
        (``slide is None``) lack the deterministic close order the
        structure's FIFO discipline requires.  ``NON_DECOMPOSABLE_SORT``
        partials stay on the plain k-way merge and are combined with the
        incremental result (see repro.core.incmerge).
        """
        incmerge = self.incmerge
        if (
            incmerge is None
            or window.slide is None
            or end - window.start <= window.slide
        ):
            return None
        decomposable = tuple(k for k in kinds if k in DECOMPOSABLE_MERGE_KINDS)
        if not decomposable:
            return None
        ops_before = incmerge.merge_ops
        got = incmerge.merge_window(
            self.store, window.first_slice, last_slice, window.ctx,
            decomposable, end - window.start,
        )
        if got is None:  # regressed behind the stream's eviction floor
            return None
        merged, events, pushed = got
        merge_ops = incmerge.merge_ops - ops_before
        rest = tuple(k for k in kinds if k not in DECOMPOSABLE_MERGE_KINDS)
        if rest:
            extra, extra_events, extra_ops = self.store.merge_context_partials(
                window.first_slice, last_slice, window.ctx, rest,
                merge_many_partials,
            )
            merged.update(extra)
            merge_ops += extra_ops
            # The k-way scan sees the same slices, so counts must agree.
            events = max(events, extra_events)
        self.stats.merge_ops += merge_ops
        if self.recorder.enabled:
            self.recorder.record(
                "merge.reuse",
                end,
                node=self.node_id,
                group=self.group.group_id,
                ctx=window.ctx,
                first_slice=window.first_slice,
                last_slice=last_slice,
                pushed=pushed,
                reused=(last_slice - window.first_slice + 1) - pushed,
                merge_ops=merge_ops,
            )
        return merged, events

    # -- slice cutting --------------------------------------------------------

    def _cut(self, time: int, eps: list, sps: list) -> None:
        """Terminate the current slice and apply window transitions.

        ``eps`` are ``(window, end_time)`` pairs closed by this cut; ``sps``
        are deferred window-open thunks executed after the cut so the new
        windows' first slice is the one opened here.
        """
        closing = self.current
        closing.close(time)
        self.stats.slices_closed += 1
        self.slice_seq += 1
        if self.recorder.enabled:
            self.recorder.record(
                "slice.close",
                time,
                node=self.node_id,
                group=self.group.group_id,
                index=closing.index,
                start=closing.start,
                end=closing.end,
            )
        refcount = len(self.open_windows) if self.assemble else 0
        if self.assemble:
            self.store.add(closing, refcount)
            if len(self.store) > self.stats.peak_live_slices:
                self.stats.peak_live_slices = len(self.store)
        if self.slice_sink is not None:
            self.slice_sink(closing, eps, self._spans)
            self._spans = {}
        if self._dedup_seen:
            self._dedup_seen = {}
        self.current = Slice(index=closing.index + 1, start=time)
        for window, end_time in eps:
            if window.uid in self.open_windows:
                self._close_window(window, end_time, closing.index)
        for open_thunk in sps:
            open_thunk()

    # -- punctuation draining -------------------------------------------------

    def _drain(self, now: int) -> None:
        if self.mode == "heap":
            self._drain_heap(now)
        else:
            self._drain_scan(now)

    def _drain_heap(self, now: int) -> None:
        heap = self._heap
        while heap and heap[0][0] <= now:
            time = heap[0][0]
            eps: list = []
            sps: list = []
            while heap and heap[0][0] == time:
                _, _, tag, payload = heapq.heappop(heap)
                self._classify(time, tag, payload, eps, sps)
            if eps or sps:
                self._cut(time, eps, sps)

    def _classify(self, time: int, tag: int, payload, eps: list, sps: list) -> None:
        if tag == _EP:
            window = payload
            if window.uid in self.open_windows:
                eps.append((window, time))
            return
        if tag == _SP_FIXED:
            tracker = payload
            if tracker in self.fixed:  # ignore punctuations of removed queries
                sps.append(self._make_fixed_opener(tracker, time))
            return
        if tag == _SESSION_EP:
            tracker, generation = payload
            tracker.armed = False
            if tracker.window is None:
                return
            if tracker.generation == generation:
                eps.append((tracker.window, time))
                tracker.window = None
            else:
                # Stale: newer events extended the session; re-arm lazily.
                tracker.armed = True
                self._push(
                    tracker.tentative_end,
                    _SESSION_EP,
                    (tracker, tracker.generation),
                )
            return
        raise EngineError(f"unknown punctuation tag: {tag!r}")

    def _make_fixed_opener(self, tracker: FixedWindowTracker, time: int):
        def open_fixed() -> None:
            window = self._open_window(
                tracker.snapshot(), tracker.ctx, time, time + tracker.length,
                slide=tracker.slide,
            )
            if self.mode == "heap":
                self._push(window.end, _EP, window)
                self._push(tracker.advance(), _SP_FIXED, tracker)
            else:
                tracker.advance()

        return open_fixed

    def _drain_scan(self, now: int) -> None:
        """The baselines' punctuation path: a per-event due-time check with
        a full tracker scan only when a punctuation is actually due."""
        if self._scan_next is not None and now < self._scan_next:
            return
        while True:
            due_time: int | None = None
            for tracker in self.fixed:
                if tracker.next_start is not None:
                    if due_time is None or tracker.next_start < due_time:
                        due_time = tracker.next_start
            for window in self.open_windows.values():
                if window.end is not None:
                    if due_time is None or window.end < due_time:
                        due_time = window.end
            for tracker in self.sessions:
                if tracker.window is not None:
                    if due_time is None or tracker.tentative_end < due_time:
                        due_time = tracker.tentative_end
            if due_time is None or due_time > now:
                self._scan_next = due_time
                return
            eps: list = []
            sps: list = []
            for window in list(self.open_windows.values()):
                if window.end is not None and window.end == due_time:
                    eps.append((window, due_time))
            for tracker in self.sessions:
                if (
                    tracker.window is not None
                    and tracker.window.uid in self.open_windows
                    and tracker.tentative_end == due_time
                ):
                    if (tracker.window, due_time) not in eps:
                        eps.append((tracker.window, due_time))
                    tracker.window = None
            for tracker in self.fixed:
                if tracker.next_start == due_time:
                    sps.append(self._make_fixed_opener(tracker, due_time))
            self._cut(due_time, eps, sps)

    # -- event processing -----------------------------------------------------

    def process(self, event: Event) -> None:
        time = event.time
        if not self._bootstrapped:
            self._bootstrap(time)
        elif self.stream_time is not None and time < self.stream_time:
            raise OutOfOrderError(
                f"event at t={time} arrived after stream time {self.stream_time}"
            )
        self.stream_time = time
        self._drain(time)

        selections = self.selections
        matched: list[int] = [
            index
            for index, selection in enumerate(selections)
            if selection.matches(event)
        ]
        self.stats.selection_checks += len(selections)
        if self._dedup_ctxs and matched:
            matched = self._apply_dedup(event, matched)

        # ``matched`` is final from here on; both the pre- and post-insert
        # data-driven punctuation passes share one membership set.
        data_driven = bool(self.sessions or self.userdef or self.counts)
        matched_set: frozenset[int] | set[int] = (
            set(matched) if data_driven else frozenset()
        )

        # Pre-insert punctuations: windows that open with this event.
        sps: list = []
        if data_driven:
            for tracker in self.sessions:
                if tracker.ctx in matched_set and tracker.window is None:
                    sps.append(self._make_session_opener(tracker, time))
            for tracker in self._userdef_closed:
                if tracker.opens_at(event):
                    sps.append(self._make_userdef_opener(tracker, time))
            for tracker in self.counts:
                if tracker.ctx in matched_set and tracker.opens_now():
                    sps.append(self._make_count_opener(tracker, time))
        if sps:
            self._cut(time, [], sps)

        if matched:
            current = self.current
            operators = self.operators
            for ctx in matched:
                current.insert(ctx, event.value, operators)
            self.stats.inserts += len(matched)
            self.stats.calculations += len(matched) * len(operators)
            if self.track_spans:
                spans = self._spans
                for ctx in matched:
                    span = spans.get(ctx)
                    if span is None:
                        spans[ctx] = [time, time]
                    else:
                        span[1] = time

        # Post-insert punctuations: windows that close with this event.
        eps: list = []
        if data_driven:
            for tracker in self.sessions:
                if tracker.ctx in matched_set and tracker.window is not None:
                    tracker.touch(time)
                    if self.mode == "heap":
                        if not tracker.armed:
                            tracker.armed = True
                            self._push(
                                tracker.tentative_end,
                                _SESSION_EP,
                                (tracker, tracker.generation),
                            )
                    elif (
                        self._scan_next is None
                        or tracker.tentative_end < self._scan_next
                    ):
                        # The session end may now be the earliest punctuation.
                        self._scan_next = tracker.tentative_end
            for tracker in self.counts:
                if tracker.ctx in matched_set:
                    for window in tracker.record():
                        eps.append((window, time))
            if event.marker is not None:
                for tracker in self.userdef:
                    if tracker.closes_at(event):
                        eps.append((tracker.window, time))
                        tracker.window = None
                        self._userdef_closed.append(tracker)
        if eps:
            self._cut(time, eps, [])

    # -- batched event processing ---------------------------------------------

    def _next_punctuation(self) -> int | None:
        """Earliest upcoming punctuation time (a safe lower bound).

        Valid right after a drain: in heap mode the heap top is strictly
        in the future (possibly stale entries only shorten runs); in scan
        mode ``_scan_next`` is the cached earliest due time, which may be
        early but never late.  ``None`` means no punctuation is pending.
        """
        if self.mode == "heap":
            return self._heap[0][0] if self._heap else None
        return self._scan_next

    @property
    def batch_eligible(self) -> bool:
        """Whether slice-runs are safe: only time-driven punctuations.

        Data-driven windows (session, count, user-defined) can cut on any
        event, so their groups must process events one at a time.
        """
        return not (self.sessions or self.userdef or self.counts)

    def begin_run(self, time: int) -> int | None:
        """Start a slice-run at ``time``: advance the stream clock, drain
        due punctuations, and return the next punctuation deadline (every
        event strictly before it lands in the currently open slice)."""
        if not self._bootstrapped:
            self._bootstrap(time)
        elif self.stream_time is not None and time < self.stream_time:
            raise OutOfOrderError(
                f"event at t={time} arrived after stream time {self.stream_time}"
            )
        self.stream_time = time
        self._drain(time)
        return self._next_punctuation()

    def process_batch(self, events: Sequence[Event]) -> None:
        """Process an ordered batch of events, amortizing per-event work.

        Between two consecutive punctuations no cuts can occur, so every
        maximal prefix of the batch strictly before the next punctuation
        deadline (*slice-run*) lands in the same open slice and is applied
        in one tight loop: punctuations are drained once per run, selection
        matching is routed through the group's key index, and operator
        updates go through the bulk :meth:`Slice.insert_run` API.  Results,
        engine state, and :class:`EngineStats` come out identical to
        per-event :meth:`process` calls.

        Groups that are not :attr:`batch_eligible` fall back to the
        per-event path.
        """
        if not self.batch_eligible:
            for event in events:
                self.process(event)
            return
        i = 0
        n = len(events)
        while i < n:
            deadline = self.begin_run(events[i].time)
            if deadline is None:
                j = n
            else:
                j = i + 1
                while j < n and events[j].time < deadline:
                    j += 1
            self._process_run(events, i, j)
            i = j

    def _process_run(self, events: Sequence[Event], start: int, stop: int) -> None:
        """Apply ``events[start:stop]`` — all inside the open slice.

        The caller guarantees no punctuation falls inside the run, so no
        cuts, window transitions, or result emissions can happen here; the
        loop only routes selections and buffers matching values per
        context, then writes each context's run through one bulk insert.
        Stats count the batched work as if it had been applied per event
        (``selection_checks`` still bills the full linear scan).
        """
        stats = self.stats
        router = self._router
        current = self.current
        operators = self.operators
        dedup = bool(self._dedup_ctxs)
        track = self.track_spans
        spans = self._spans
        prev = self.stream_time if self.stream_time is not None else events[start].time
        run_values: dict[int, list[float]] = {}
        matched_total = 0
        for k in range(start, stop):
            event = events[k]
            time = event.time
            if time < prev:
                raise OutOfOrderError(
                    f"event at t={time} arrived after stream time {prev}"
                )
            prev = time
            value = event.value
            if dedup or track:
                matched = [
                    index
                    for index, lo, hi in router.candidates(event.key)
                    if (lo is None or value >= lo) and (hi is None or value < hi)
                ]
                if dedup and matched:
                    matched = self._apply_dedup(event, matched)
                for ctx in matched:
                    bucket = run_values.get(ctx)
                    if bucket is None:
                        bucket = run_values[ctx] = []
                    bucket.append(value)
                    if track:
                        span = spans.get(ctx)
                        if span is None:
                            spans[ctx] = [time, time]
                        else:
                            span[1] = time
                matched_total += len(matched)
            else:
                for ctx, lo, hi in router.candidates(event.key):
                    if (lo is None or value >= lo) and (hi is None or value < hi):
                        bucket = run_values.get(ctx)
                        if bucket is None:
                            bucket = run_values[ctx] = []
                        bucket.append(value)
                        matched_total += 1
        self.stream_time = prev
        stats.selection_checks += router.total * (stop - start)
        if matched_total:
            for ctx, values in run_values.items():
                current.insert_run(ctx, values, operators)
            stats.inserts += matched_total
            stats.calculations += matched_total * len(operators)

    def _apply_dedup(self, event: Event, matched: list[int]) -> list[int]:
        """Drop deduplicating contexts that already saw this exact event
        within the open slice (the deduplication operator, Sec 4.2.3)."""
        kept: list[int] = []
        signature = (event.time, event.key, event.value, event.marker)
        for ctx in matched:
            if ctx in self._dedup_ctxs:
                seen = self._dedup_seen.get(ctx)
                if seen is None:
                    seen = self._dedup_seen[ctx] = set()
                if signature in seen:
                    self.stats.duplicates_dropped += 1
                    continue
                seen.add(signature)
            kept.append(ctx)
        return kept

    def _make_session_opener(self, tracker: SessionWindowTracker, time: int):
        def open_session() -> None:
            window = self._open_window(tracker.snapshot(), tracker.ctx, time, None)
            tracker.window = window

        return open_session

    def _make_userdef_opener(self, tracker: UserDefinedWindowTracker, time: int):
        def open_userdef() -> None:
            window = self._open_window(tracker.snapshot(), tracker.ctx, time, None)
            tracker.window = window
            if tracker in self._userdef_closed:
                self._userdef_closed.remove(tracker)

        return open_userdef

    def _make_count_opener(self, tracker: CountWindowTracker, time: int):
        def open_count() -> None:
            window = self._open_window(
                tracker.snapshot(), tracker.ctx, time, None, start_count=tracker.seen
            )
            tracker.open_windows.append(window)

        return open_count

    # -- progress and shutdown ------------------------------------------------

    def advance(self, time: int) -> None:
        """Apply a watermark: fire all punctuations up to ``time``."""
        if not self._bootstrapped:
            self._bootstrap(time)
        if self.stream_time is not None and time < self.stream_time:
            raise OutOfOrderError(
                f"watermark {time} behind stream time {self.stream_time}"
            )
        self.stream_time = time
        self._drain(time)

    def close(self, at_time: int | None = None) -> None:
        """End of stream: flush punctuations and force-close open windows.

        Data-driven windows (session, user-defined, count) are closed at
        the final stream time; fixed windows keep their declared ends but
        contain only the observed prefix.
        """
        final = at_time if at_time is not None else (self.stream_time or 0)
        self.advance(final)
        if not self.open_windows:
            return
        eps = []
        for window in list(self.open_windows.values()):
            end = window.end if window.end is not None else final
            eps.append((window, min(end, final) if window.end is None else end))
        for tracker in self.sessions:
            tracker.window = None
        for tracker in self.userdef:
            if tracker.window is not None:
                tracker.window = None
                self._userdef_closed.append(tracker)
        for tracker in self.counts:
            tracker.open_windows.clear()
        self._cut(final, eps, [])


class AggregationEngine:
    """Multi-query window aggregation with cross-query sharing (Sec 4).

    This is the centralized engine (and the per-node workhorse of the
    decentralized clusters).  Construct it with the full query set; feed
    events in timestamp order via :meth:`process`; results appear in
    :attr:`sink`.

    Args:
        queries: the continuous queries to execute.
        config: an :class:`~repro.core.config.EngineConfig` carrying every
            behavioural knob; the keyword arguments below override single
            fields of it.  ``config.shards`` is informational here — this
            class always runs in-process; sharded execution is enacted by
            :class:`repro.parallel.ShardedEngine`.
        policy: how aggressively to share (Desis = ``FULL``).
        punctuation_mode: ``"heap"`` (Desis) or ``"scan"`` (baseline cost
            model); see the module docstring.
        emit_empty: also emit results for windows without matching events.
        sink: custom result sink (default: an in-memory :class:`ResultSink`).
        merge_mode: ``"incremental"`` (default) reuses shared-slice merges
            across overlapping fixed windows via the Two-Stacks layer
            (float aggregates within 1e-9 relative of the plain fold);
            ``"exact"`` keeps the byte-identical full-range scan.
    """

    def __init__(
        self,
        queries: Iterable[Query],
        *,
        config: "EngineConfig | None" = None,
        policy: SharingPolicy | None = None,
        punctuation_mode: str | None = None,
        emit_empty: bool | None = None,
        sink: ResultSink | None = None,
        plan: QueryPlan | None = None,
        recorder=None,
        merge_mode: str | None = None,
    ) -> None:
        from repro.core.config import EngineConfig

        resolved = config if config is not None else EngineConfig()
        overrides: dict[str, object] = {}
        if policy is not None:
            overrides["policy"] = policy
        if punctuation_mode is not None:
            overrides["punctuation_mode"] = punctuation_mode
        if emit_empty is not None:
            overrides["emit_empty"] = emit_empty
        if merge_mode is not None:
            overrides["merge_mode"] = merge_mode
        if overrides:
            resolved = resolved.with_options(**overrides)
        #: the resolved configuration this engine runs with
        self.config = resolved
        self.sink = sink if sink is not None else ResultSink()
        self.stats = EngineStats()
        if plan is not None:
            self.plan = plan
        else:
            self.plan = analyze(queries, policy=resolved.policy)
        self.policy = self.plan.policy
        self.merge_mode = resolved.merge_mode
        #: opt-in slice-lifecycle tracing (repro.obs.tracing.TraceRecorder)
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.groups: list[GroupRuntime] = [
            GroupRuntime(
                group,
                self.sink,
                self.stats,
                punctuation_mode=resolved.punctuation_mode,
                emit_empty=resolved.emit_empty,
                recorder=self.recorder,
                node_id="engine",
                merge_mode=resolved.merge_mode,
            )
            for group in self.plan.groups
        ]
        self._closed = False

    @property
    def group_count(self) -> int:
        return len(self.groups)

    def process(self, event: Event) -> None:
        """Process one event (events must arrive in timestamp order)."""
        self.stats.events += 1
        for group in self.groups:
            group.process(event)

    def process_batch(self, events: Sequence[Event]) -> None:
        """Process an ordered batch of events through the fast path.

        Equivalent to calling :meth:`process` per event — identical
        results, state, and :class:`EngineStats` — but each query-group
        amortizes punctuation drains, selection matching, and operator
        dispatch over whole slice-runs (see
        :meth:`GroupRuntime.process_batch`).

        The groups advance through the batch in *synchronized* slice-runs
        (every chunk ends at the earliest next punctuation across the
        batch-eligible groups), so even the cross-group result
        interleaving is byte-identical to per-event processing: eligible
        groups only emit at chunk starts — in group order, exactly when
        and where the per-event path drains them — while groups with
        data-driven windows process each chunk event by event, emitting at
        their own events just like under :meth:`process`.

        The batch must be internally time-ordered; this is validated up
        front so a mid-batch regression cannot leave groups at diverging
        stream times.
        """
        if not isinstance(events, (list, tuple)):
            events = list(events)
        if not events:
            return
        prev = events[0].time
        for event in events:
            if event.time < prev:
                raise OutOfOrderError(
                    f"event at t={event.time} arrived after stream time {prev}"
                )
            prev = event.time
        self.stats.events += len(events)
        groups = self.groups
        if len(groups) == 1:
            groups[0].process_batch(events)
            return
        eligible = [group.batch_eligible for group in groups]
        any_fallback = not all(eligible)
        i = 0
        n = len(events)
        while i < n:
            time = events[i].time
            deadline: int | None = None
            # The chunk's first event, in group order: eligible groups
            # drain (emitting due results) and open their run; data-driven
            # groups process the event outright.
            for index, group in enumerate(groups):
                if eligible[index]:
                    due = group.begin_run(time)
                    if due is not None and (deadline is None or due < deadline):
                        deadline = due
                else:
                    group.process(events[i])
            if deadline is None:
                j = n
            else:
                j = i + 1
                while j < n and events[j].time < deadline:
                    j += 1
            # Eligible groups cannot emit again before the deadline, so
            # data-driven groups may run ahead through the chunk without
            # disturbing the per-event result interleaving.
            if any_fallback:
                for k in range(i + 1, j):
                    event = events[k]
                    for index, group in enumerate(groups):
                        if not eligible[index]:
                            group.process(event)
            for index, group in enumerate(groups):
                if eligible[index]:
                    group._process_run(events, i, j)
            i = j

    def process_many(self, events: Iterable[Event]) -> None:
        """Batched ingestion for any iterable of in-order events."""
        self.process_batch(
            events if isinstance(events, (list, tuple)) else list(events)
        )

    def advance(self, time: int) -> None:
        """Apply a watermark to every group."""
        for group in self.groups:
            group.advance(time)

    def close(self, at_time: int | None = None) -> ResultSink:
        """Flush everything and return the result sink."""
        if self._closed:
            raise EngineError("engine already closed")
        self._closed = True
        for group in self.groups:
            group.close(at_time)
        return self.sink

    # -- runtime query management (Sec 3.2) ------------------------------------

    def remove_query(self, query_id: str, *, drain: bool = False) -> None:
        """Remove a running query (Sec 3.2).

        ``drain=False`` removes it immediately, discarding open windows;
        ``drain=True`` lets already-open windows finish first.
        """
        group = self.plan.group_of(query_id)
        runtime = self.groups[group.group_id]
        runtime.remove_query(query_id, drain=drain)
        group.remove_query(query_id)

    def add_query(self, query: Query) -> None:
        """Attach a new query at runtime (Sec 3.2).

        The query joins an existing compatible group (or a new group) and
        starts windowing at the current stream time.  Operators already
        planned for running groups are never dropped, so open windows keep
        the partials they rely on.
        """
        from repro.core.analyzer import QueryGroup, _policy_key
        from repro.core.predicates import compatible as _compatible

        if any(q.query_id == query.query_id for q in self.plan.queries):
            raise QueryError(f"duplicate query id: {query.query_id!r}")
        key = _policy_key(query, self.policy)
        target: GroupRuntime | None = None
        for runtime in self.groups:
            group = runtime.group
            if not group.queries:
                continue
            if _policy_key(group.queries[0], self.policy) != key:
                continue
            if all(_compatible(query.selection, sel) for sel in group.selections):
                target = runtime
                break
        if target is None:
            group = QueryGroup(group_id=len(self.plan.groups))
            self.plan.groups.append(group)
            group._admit(query)
            group._replan()
            target = GroupRuntime(
                group,
                self.sink,
                self.stats,
                punctuation_mode=self.groups[0].mode if self.groups else "heap",
                recorder=self.recorder,
                node_id="engine",
                merge_mode=self.merge_mode,
            )
            self.groups.append(target)
            # Bootstrap the new group at the current stream time so its
            # first fixed window anchors at the join time — without this,
            # the group would bootstrap lazily at its next event and its
            # window schedule could anchor at an arbitrary later (or, via
            # ``advance``, the origin) timestamp instead.
            stream_time = max(
                (g.stream_time for g in self.groups if g.stream_time is not None),
                default=None,
            )
            if stream_time is not None:
                target.advance(stream_time)
            return
        group = target.group
        # Cut the open slice so new selections/operators apply cleanly from
        # here; historical slices are only read by pre-existing windows.
        if target._bootstrapped and target.stream_time is not None:
            target._cut(target.stream_time, [], [])
        group._admit(query)
        new_ops = plan_operators_keeping(group, target.operators)
        group.operators = new_ops
        target.operators = new_ops
        target.refresh_selections()
        target.needed = {
            q.query_id: required_kinds(q, new_ops) for q in group.queries
        }
        target.add_query(query)


def plan_operators_keeping(group, existing: tuple) -> tuple:
    """Replan a running group's operators without dropping any in use."""
    from repro.core.functions import plan_operators

    fresh = plan_operators(q.function for q in group.queries)
    merged = list(existing)
    for kind in fresh:
        if kind not in merged:
            merged.append(kind)
    return tuple(merged)
