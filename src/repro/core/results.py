"""Window result records and sinks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["WindowResult", "ResultSink"]


@dataclass(slots=True, frozen=True)
class WindowResult:
    """The final aggregate of one window of one query.

    Attributes:
        query_id: the query this window belongs to.
        start: window start (ms, inclusive).
        end: window end (ms; exclusive for time-based windows, the time of
            the last contained event for count/user-defined windows).
        value: the aggregation result; ``None`` when the function is
            undefined on an empty window (e.g. average of nothing).
        event_count: number of events that matched the query's selection
            within the window.
        emitted_at: stream time at which the result was produced; in the
            decentralized setting this is simulated network time, so
            ``emitted_at - end`` is the event-time result latency.
        shed_slices: coverage intervals that overload control shed from
            this window's input: ``(node_id, start, end)`` tuples clipped
            to the window span (DESIGN.md §12).  Empty unless load
            shedding touched the window.
        completeness: fraction of the window span whose coverage was NOT
            shed — ``1.0`` for every fully assembled window; a degraded
            window carries ``completeness < 1.0`` and the shed intervals
            that explain the gap, instead of a silently wrong total.
    """

    query_id: str
    start: int
    end: int
    value: float | int | None
    event_count: int = 0
    emitted_at: int = 0
    shed_slices: tuple[tuple[str, int, int], ...] = ()
    completeness: float = 1.0

    @property
    def degraded(self) -> bool:
        return self.completeness < 1.0

    def __str__(self) -> str:
        base = (
            f"{self.query_id}[{self.start}..{self.end})="
            f"{self.value!r} (n={self.event_count})"
        )
        if self.completeness < 1.0:
            base += f" [degraded: completeness={self.completeness:.3f}]"
        return base


@dataclass(slots=True)
class ResultSink:
    """Collects window results; the default sink used by engines and nodes.

    Benchmarks that only need counts can set ``keep=False`` to avoid
    accumulating millions of result records.
    """

    keep: bool = True
    results: list[WindowResult] = field(default_factory=list)
    count: int = 0

    def emit(self, result: WindowResult) -> None:
        self.count += 1
        if self.keep:
            self.results.append(result)

    def __iter__(self) -> Iterator[WindowResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return self.count

    def for_query(self, query_id: str) -> list[WindowResult]:
        return [r for r in self.results if r.query_id == query_id]
