"""Slices and the slice store (Sec 4.1).

A :class:`Slice` is the stretch of stream between two consecutive
punctuations of a query-group.  While open, it holds one mutable
:class:`~repro.core.operators.OperatorSetState` per selection context that
received events; closing it freezes those states into partial results.

The :class:`SliceStore` keeps closed slices alive exactly as long as some
open window still needs them: each closed slice carries a reference count
equal to the number of windows that were open when it closed, and windows
decrement the counts of their covered slices when they end.  Slices are
garbage-collected from the front once their count reaches zero, bounding
memory by the span of the longest open window — the memory behaviour
Section 2.3 motivates slicing with.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.core.errors import EngineError
from repro.core.operators import OperatorSetState
from repro.core.types import OperatorKind

__all__ = ["Slice", "SliceStore"]

#: A frozen slice's payload: context index -> operator kind -> partial.
Partials = dict[int, dict[OperatorKind, Any]]


class Slice:
    """One slice of the stream for one query-group."""

    __slots__ = (
        "index",
        "start",
        "end",
        "contexts",
        "partials",
        "insert_counts",
        "refcount",
        "closed",
    )

    def __init__(self, index: int, start: int) -> None:
        self.index = index
        self.start = start
        self.end: int | None = None
        #: open state: context index -> operator states (created lazily)
        self.contexts: dict[int, OperatorSetState] = {}
        #: closed state: context index -> operator kind -> partial result
        self.partials: Partials = {}
        #: context index -> number of events inserted
        self.insert_counts: dict[int, int] = {}
        self.refcount = 0
        self.closed = False

    def insert(self, ctx: int, value: float, kinds: Sequence[OperatorKind]) -> None:
        """Apply one event's value to context ``ctx``'s shared operators."""
        state = self.contexts.get(ctx)
        if state is None:
            state = OperatorSetState(kinds)
            self.contexts[ctx] = state
        state.insert(value)

    def insert_run(
        self, ctx: int, values: Sequence[float], kinds: Sequence[OperatorKind]
    ) -> None:
        """Apply a run of values to context ``ctx`` in one bulk update.

        Produces exactly the state repeated :meth:`insert` calls would —
        the batched ingestion fast path relies on that equivalence.
        """
        state = self.contexts.get(ctx)
        if state is None:
            state = OperatorSetState(kinds)
            self.contexts[ctx] = state
        state.insert_many(values)

    def close(self, end: int) -> None:
        """Freeze the slice: compute partial results for every context."""
        if self.closed:
            raise EngineError(f"slice {self.index} closed twice")
        self.end = end
        for ctx, state in self.contexts.items():
            self.partials[ctx] = state.partials()
            self.insert_counts[ctx] = state.inserts
        self.contexts.clear()
        self.closed = True

    @property
    def total_inserts(self) -> int:
        return sum(self.insert_counts.values())

    def __repr__(self) -> str:
        status = "closed" if self.closed else "open"
        return f"Slice(#{self.index} [{self.start}..{self.end}) {status})"


class SliceStore:
    """Closed slices of one query-group, reference-counted by open windows."""

    __slots__ = ("_slices", "freed")

    def __init__(self) -> None:
        self._slices: OrderedDict[int, Slice] = OrderedDict()
        self.freed = 0

    def add(self, slice_: Slice, refcount: int) -> None:
        if not slice_.closed:
            raise EngineError("only closed slices can be stored")
        slice_.refcount = refcount
        if refcount == 0:
            # No open window covers the slice; it can be dropped immediately
            # (this happens between windows of non-overlapping queries).
            self.freed += 1
            return
        self._slices[slice_.index] = slice_

    def get(self, index: int) -> Slice | None:
        return self._slices.get(index)

    def covered(self, first: int, last: int) -> Iterator[Slice]:
        """Yield stored slices with ``first <= index <= last`` in order."""
        for index in range(first, last + 1):
            slice_ = self._slices.get(index)
            if slice_ is not None:
                yield slice_

    def release(self, first: int, last: int) -> None:
        """A window covering slices ``first..last`` ended: drop references."""
        for index in range(first, last + 1):
            slice_ = self._slices.get(index)
            if slice_ is not None:
                slice_.refcount -= 1
        self._gc()

    def _gc(self) -> None:
        while self._slices:
            index, slice_ = next(iter(self._slices.items()))
            if slice_.refcount > 0:
                break
            del self._slices[index]
            self.freed += 1

    def __len__(self) -> int:
        return len(self._slices)

    def merge_context_partials(
        self,
        first: int,
        last: int,
        ctx: int,
        kinds: Iterable[OperatorKind],
        merge: Callable[[OperatorKind, Iterable[Any]], Any],
    ) -> tuple[dict[OperatorKind, Any], int, int]:
        """Merge context ``ctx``'s partials across slices ``first..last``.

        Returns the merged per-kind partials, the total event count, and
        the number of partials fed to the merge (the scan's work measure,
        comparable with the incremental layer's ``merge_ops``).  Slices
        without activity for the context contribute nothing (their
        partials are the operator identities).
        """
        collected: dict[OperatorKind, list[Any]] = {kind: [] for kind in kinds}
        events = 0
        for slice_ in self.covered(first, last):
            parts = slice_.partials.get(ctx)
            if parts is None:
                continue
            events += slice_.insert_counts.get(ctx, 0)
            for kind, bucket in collected.items():
                if kind in parts:
                    bucket.append(parts[kind])
        merged = {}
        merge_ops = 0
        for kind, bucket in collected.items():
            if bucket:
                merged[kind] = merge(kind, bucket)
                merge_ops += len(bucket)
        return merged, events, merge_ops
