"""Query and window specifications.

A :class:`Query` is a continuous windowed aggregation: *window spec* (type,
measure, extent), *aggregation function*, and *selection predicate*.  This is
the unit users submit through the interface and the query analyzer groups
into query-groups (Sec 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import QueryError
from repro.core.functions import FunctionSpec, is_decomposable
from repro.core.predicates import Selection
from repro.core.types import AggFunction, WindowMeasure, WindowType

__all__ = ["WindowSpec", "Query"]


@dataclass(slots=True, frozen=True)
class WindowSpec:
    """How windows of one query start and end (Sec 2.1).

    Attributes:
        window_type: tumbling, sliding, session, or user-defined.
        measure: whether ``length``/``slide`` are milliseconds (``TIME``)
            or event counts (``COUNT``).
        length: window extent for tumbling and sliding windows.
        slide: distance between consecutive sliding-window starts.
        gap: inactivity gap ending a session window (always time-based).
        start_marker: user-defined windows open at events carrying this
            marker; when ``None``, a new window opens right after the
            previous one ends (back-to-back windows, e.g. car trips).
        end_marker: user-defined windows close after an event carrying
            this marker.
    """

    window_type: WindowType
    measure: WindowMeasure = WindowMeasure.TIME
    length: int | None = None
    slide: int | None = None
    gap: int | None = None
    start_marker: str | None = None
    end_marker: str | None = None

    def __post_init__(self) -> None:
        kind = self.window_type
        if kind in (WindowType.TUMBLING, WindowType.SLIDING):
            if self.length is None or self.length <= 0:
                raise QueryError(f"{kind.value} window needs a positive length")
            if self.gap is not None or self.end_marker is not None:
                raise QueryError(f"{kind.value} window takes no gap or markers")
        if kind is WindowType.TUMBLING and self.slide is not None:
            raise QueryError("tumbling window takes no slide (use SLIDING)")
        if kind is WindowType.SLIDING and (self.slide is None or self.slide <= 0):
            raise QueryError("sliding window needs a positive slide")
        if kind is WindowType.SESSION:
            if self.gap is None or self.gap <= 0:
                raise QueryError("session window needs a positive gap")
            if self.measure is not WindowMeasure.TIME:
                raise QueryError("session windows are time-based")
            if self.length is not None or self.slide is not None:
                raise QueryError("session window takes no length or slide")
        if kind is WindowType.USER_DEFINED:
            if self.end_marker is None:
                raise QueryError("user-defined window needs an end_marker")
            if self.measure is not WindowMeasure.TIME:
                raise QueryError("user-defined windows are time-based")
            if self.length is not None or self.slide is not None:
                raise QueryError("user-defined window takes no length or slide")

    # -- convenience constructors -------------------------------------------

    @classmethod
    def tumbling(
        cls, length: int, measure: WindowMeasure = WindowMeasure.TIME
    ) -> "WindowSpec":
        """A tumbling window of ``length`` ms (or events for COUNT measure)."""
        return cls(WindowType.TUMBLING, measure=measure, length=length)

    @classmethod
    def sliding(
        cls, length: int, slide: int, measure: WindowMeasure = WindowMeasure.TIME
    ) -> "WindowSpec":
        """A sliding window of ``length`` advancing every ``slide``."""
        return cls(WindowType.SLIDING, measure=measure, length=length, slide=slide)

    @classmethod
    def session(cls, gap: int) -> "WindowSpec":
        """A session window closed by ``gap`` ms of inactivity."""
        return cls(WindowType.SESSION, gap=gap)

    @classmethod
    def user_defined(
        cls, end_marker: str, start_marker: str | None = None
    ) -> "WindowSpec":
        """A user-defined window delimited by marker events."""
        return cls(
            WindowType.USER_DEFINED,
            start_marker=start_marker,
            end_marker=end_marker,
        )

    # -- classification ------------------------------------------------------

    @property
    def is_fixed_size(self) -> bool:
        """Fixed-size windows have punctuations computable in advance."""
        return self.window_type in (WindowType.TUMBLING, WindowType.SLIDING)

    @property
    def effective_slide(self) -> int:
        """Distance between window starts for fixed-size windows."""
        if self.window_type is WindowType.TUMBLING:
            assert self.length is not None
            return self.length
        if self.window_type is WindowType.SLIDING:
            assert self.slide is not None
            return self.slide
        raise QueryError(f"{self.window_type.value} windows have no fixed slide")

    def __str__(self) -> str:
        kind = self.window_type
        if kind is WindowType.TUMBLING:
            return f"tumbling({self.length}, {self.measure.value})"
        if kind is WindowType.SLIDING:
            return f"sliding({self.length}/{self.slide}, {self.measure.value})"
        if kind is WindowType.SESSION:
            return f"session(gap={self.gap})"
        return f"user_defined({self.start_marker!r}..{self.end_marker!r})"


@dataclass(slots=True, frozen=True)
class Query:
    """A continuous windowed aggregation query.

    Attributes:
        query_id: unique id used to address the query at runtime (Sec 3.2).
        window: the window specification.
        function: the aggregation function.
        selection: the selection predicate (defaults to pass-all).
    """

    query_id: str
    window: WindowSpec
    function: FunctionSpec
    selection: Selection = field(default_factory=Selection)

    @property
    def is_decomposable(self) -> bool:
        return is_decomposable(self.function)

    @property
    def is_count_based(self) -> bool:
        return self.window.measure is WindowMeasure.COUNT

    @classmethod
    def of(
        cls,
        query_id: str,
        window: WindowSpec,
        fn: AggFunction,
        *,
        quantile: float | None = None,
        selection: Selection | None = None,
    ) -> "Query":
        """Shorthand constructor building the :class:`FunctionSpec` inline."""
        return cls(
            query_id=query_id,
            window=window,
            function=FunctionSpec(fn, quantile),
            selection=selection if selection is not None else Selection(),
        )

    def __str__(self) -> str:
        return (
            f"{self.query_id}: {self.function} over {self.window} "
            f"where {self.selection}"
        )
