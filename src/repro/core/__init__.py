"""The Desis aggregation engine: the paper's primary contribution (Sec 4)."""

from repro.core.analyzer import QueryGroup, QueryPlan, analyze
from repro.core.config import EngineConfig
from repro.core.engine import AggregationEngine, EngineStats
from repro.core.errors import (
    ClusterError,
    CodecError,
    EngineError,
    OutOfOrderError,
    QueryError,
    ReproError,
    TopologyError,
    WindowError,
)
from repro.core.event import Event, Watermark, ensure_ordered, merge_streams
from repro.core.functions import FunctionSpec, finalize, is_decomposable, operators_for
from repro.core.predicates import Selection, SelectionRelation, compatible
from repro.core.query import Query, WindowSpec
from repro.core.results import ResultSink, WindowResult
from repro.core.types import (
    AggFunction,
    NodeRole,
    OperatorKind,
    SharingPolicy,
    WindowMeasure,
    WindowType,
)

__all__ = [
    "AggregationEngine",
    "AggFunction",
    "ClusterError",
    "CodecError",
    "EngineConfig",
    "EngineError",
    "EngineStats",
    "Event",
    "FunctionSpec",
    "NodeRole",
    "OperatorKind",
    "OutOfOrderError",
    "Query",
    "QueryError",
    "QueryGroup",
    "QueryPlan",
    "ReproError",
    "ResultSink",
    "Selection",
    "SelectionRelation",
    "SharingPolicy",
    "TopologyError",
    "Watermark",
    "WindowError",
    "WindowMeasure",
    "WindowResult",
    "WindowSpec",
    "WindowType",
    "analyze",
    "compatible",
    "ensure_ordered",
    "finalize",
    "is_decomposable",
    "merge_streams",
    "operators_for",
]
