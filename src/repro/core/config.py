"""Unified engine configuration.

Eight PRs of knob growth left the engine's construction surface sprawling:
``DesisSession`` took six keyword arguments, ``AggregationEngine`` five,
and ``ClusterConfig`` duplicated two of them (``punctuation_mode``,
``merge_mode``) as loose string fields.  :class:`EngineConfig` is the one
place an engine's behavioural knobs live.  It is frozen — a config is a
value, shared freely between a session, its engine, and (for sharded
execution) every worker process without aliasing hazards.

The legacy keyword arguments keep working everywhere they existed, via
shims that emit :class:`DeprecationWarning` and fold the value into the
config (see :class:`repro.interface.session.DesisSession`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.core.errors import EngineError
from repro.core.types import SharingPolicy

__all__ = ["EngineConfig"]

_PUNCTUATION_MODES = ("heap", "scan")
_MERGE_MODES = ("incremental", "exact")


@dataclass(slots=True, frozen=True)
class EngineConfig:
    """Every behavioural knob of a local aggregation engine.

    Attributes:
        policy: slice-sharing policy (Sec 4.3); ``FULL`` shares slices
            across all compatible queries.
        punctuation_mode: ``"heap"`` (punctuation min-heap) or ``"scan"``
            (linear scan of trackers) — the drain strategy benchmarked in
            BENCH_hot_path.
        merge_mode: ``"incremental"`` routes overlapping sliding windows
            through the slice-merge tree; ``"exact"`` re-merges from the
            slice store on every close.
        emit_empty: emit results for windows that contained no events.
        shards: number of OS worker processes for sharded execution
            (DESIGN.md §13).  ``1`` runs the classic in-process engine;
            ``N >= 2`` partitions the stream by key hash across ``N``
            workers with a deterministic reduce at window close.
        shard_batch_size: events buffered before a frame is shipped to
            the workers (sharded execution only).
        measure_latency: attach a latency probe to the result path.
        latency_sample_every: probe sampling period, in events.
        latency_expiry_horizon_ms: probe expiry horizon for abandoned
            samples; ``None`` disables expiry.
    """

    policy: SharingPolicy = SharingPolicy.FULL
    punctuation_mode: str = "heap"
    merge_mode: str = "incremental"
    emit_empty: bool = False
    shards: int = 1
    shard_batch_size: int = 4096
    measure_latency: bool = False
    latency_sample_every: int = 100
    latency_expiry_horizon_ms: int | None = 600_000

    def __post_init__(self) -> None:
        if self.punctuation_mode not in _PUNCTUATION_MODES:
            raise EngineError(
                f"unknown punctuation mode: {self.punctuation_mode!r} "
                f"(expected one of {_PUNCTUATION_MODES})"
            )
        if self.merge_mode not in _MERGE_MODES:
            raise EngineError(
                f"unknown merge mode: {self.merge_mode!r} "
                f"(expected one of {_MERGE_MODES})"
            )
        if self.shards < 1:
            raise EngineError(f"shards must be >= 1, got {self.shards}")
        if self.shard_batch_size < 1:
            raise EngineError(
                f"shard_batch_size must be >= 1, got {self.shard_batch_size}"
            )
        if self.latency_sample_every < 1:
            raise EngineError(
                "latency_sample_every must be >= 1, got "
                f"{self.latency_sample_every}"
            )

    def with_options(self, **changes: Any) -> "EngineConfig":
        """A copy of this config with ``changes`` applied (re-validated)."""
        return replace(self, **changes)
