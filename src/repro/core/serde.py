"""Dict (de)serialization of query specifications.

Used by the message manager to broadcast *window attributes* (queries and
query-groups) from the root node to all other nodes (Sec 3.1), and handy
for persisting workloads.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.errors import QueryError
from repro.core.functions import FunctionSpec
from repro.core.predicates import Selection
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, WindowMeasure, WindowType

__all__ = ["query_to_dict", "query_from_dict"]


def query_to_dict(query: Query) -> dict[str, Any]:
    """A JSON-compatible representation of ``query``."""
    window = query.window
    return {
        "query_id": query.query_id,
        "window": {
            "type": window.window_type.value,
            "measure": window.measure.value,
            "length": window.length,
            "slide": window.slide,
            "gap": window.gap,
            "start_marker": window.start_marker,
            "end_marker": window.end_marker,
        },
        "function": {
            "fn": query.function.fn.value,
            "quantile": query.function.quantile,
        },
        "selection": {
            "key": query.selection.key,
            "lo": query.selection.lo,
            "hi": query.selection.hi,
            "deduplicate": query.selection.deduplicate,
        },
    }


def query_from_dict(data: Mapping[str, Any]) -> Query:
    """Inverse of :func:`query_to_dict`."""
    try:
        window_data = data["window"]
        window = WindowSpec(
            window_type=WindowType(window_data["type"]),
            measure=WindowMeasure(window_data["measure"]),
            length=window_data.get("length"),
            slide=window_data.get("slide"),
            gap=window_data.get("gap"),
            start_marker=window_data.get("start_marker"),
            end_marker=window_data.get("end_marker"),
        )
        function_data = data["function"]
        function = FunctionSpec(
            AggFunction(function_data["fn"]), function_data.get("quantile")
        )
        selection_data = data.get("selection", {})
        selection = Selection(
            key=selection_data.get("key"),
            lo=selection_data.get("lo"),
            hi=selection_data.get("hi"),
            deduplicate=selection_data.get("deduplicate", False),
        )
        return Query(
            query_id=data["query_id"],
            window=window,
            function=function,
            selection=selection,
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise QueryError(f"malformed query dict: {exc}") from exc
