"""Per-query window bookkeeping: instances and punctuation trackers.

The aggregation engine cuts a slice whenever any member query has a window
start (*sp*) or window end (*ep*) punctuation (Sec 4.1).  The classes here
track when those punctuations occur:

* :class:`FixedWindowTracker` — tumbling and sliding time-based windows.
  Their punctuations form a deterministic schedule, so the engine keeps
  only the *next* start in a heap instead of checking every event — this
  "calculate window ends in advance" behaviour is why Desis beats the
  per-event-checking baselines in Fig 6b.
* :class:`SessionWindowTracker` — session windows.  Ends are data-driven:
  a window closes ``gap`` ms after its last matching event.  The tracker
  keeps one *tentative* end punctuation alive in the engine's heap and
  refreshes it lazily when it fires stale.
* :class:`UserDefinedWindowTracker` — windows delimited by marker events
  (e.g. car trips); ends fire right after the end-marker event.
* :class:`CountWindowTracker` — count-based tumbling/sliding windows;
  punctuations fire at matching-event indices rather than times.

**Window deduplication.**  Every tracker serves *all* queries of its group
that share the same window specification and selection context — the
mechanism that lets Desis scale to very large query counts (the paper's
"millions of queries"): a thousand identical windows cost one tracker and
one window instance; only the final result materialization is per query
(the effect dominating Fig 13a beyond ~10K queries).

Trackers only track; the engine performs the actual slice cuts and window
lifecycle transitions.
"""

from __future__ import annotations

from repro.core.event import Event
from repro.core.query import Query, WindowSpec
from repro.core.types import WindowType

__all__ = [
    "WindowInstance",
    "FixedWindowTracker",
    "SessionWindowTracker",
    "UserDefinedWindowTracker",
    "CountWindowTracker",
]


class WindowInstance:
    """One concrete open window, subscribed to by one or more queries."""

    __slots__ = ("uid", "queries", "ctx", "start", "end", "first_slice",
                 "start_count", "slide")

    def __init__(
        self,
        uid: int,
        queries: tuple[Query, ...],
        ctx: int,
        start: int,
        end: int | None,
        first_slice: int,
        start_count: int = 0,
        slide: int | None = None,
    ) -> None:
        self.uid = uid
        #: snapshot of the tracker's subscribers at window open; queries
        #: added later only join subsequently opened windows
        self.queries = queries
        self.ctx = ctx
        self.start = start
        #: known in advance for fixed windows, assigned at close otherwise
        self.end = end
        #: index of the first slice belonging to this window
        self.first_slice = first_slice
        #: for count-based windows: matching-event index at window start
        self.start_count = start_count
        #: the tracker's slide for fixed time windows, ``None`` for
        #: data-driven windows — the signal the incremental merge layer
        #: keys off (overlapping fixed windows reuse shared-slice merges)
        self.slide = slide

    def __repr__(self) -> str:
        ids = ",".join(q.query_id for q in self.queries[:3])
        return f"WindowInstance({ids} #{self.uid} [{self.start}..{self.end}))"


class _TrackerBase:
    """Common subscriber bookkeeping for all tracker kinds."""

    __slots__ = ("spec", "ctx", "queries")

    def __init__(self, query: Query, ctx: int) -> None:
        self.spec: WindowSpec = query.window
        self.ctx = ctx
        self.queries: list[Query] = [query]

    def subscribe(self, query: Query) -> None:
        self.queries.append(query)

    def unsubscribe(self, query_id: str) -> bool:
        """Drop a subscriber; returns True when the tracker is now empty."""
        self.queries = [q for q in self.queries if q.query_id != query_id]
        return not self.queries

    def serves(self, query_id: str) -> bool:
        return any(q.query_id == query_id for q in self.queries)

    def snapshot(self) -> tuple[Query, ...]:
        return tuple(self.queries)


class FixedWindowTracker(_TrackerBase):
    """Deterministic start schedule for tumbling/sliding time windows."""

    __slots__ = ("length", "slide", "next_start")

    def __init__(self, query: Query, ctx: int) -> None:
        super().__init__(query, ctx)
        assert query.window.length is not None
        self.length = query.window.length
        self.slide = query.window.effective_slide
        self.next_start: int | None = None

    def bootstrap(self, origin: int) -> int:
        """Set (and return) the first window start at the stream origin."""
        self.next_start = origin
        return origin

    def advance(self) -> int:
        """Consume the pending start and return the following one."""
        assert self.next_start is not None
        self.next_start += self.slide
        return self.next_start


class SessionWindowTracker(_TrackerBase):
    """Gap-driven session windows (Sec 2.1).

    ``generation`` invalidates tentative end punctuations: each matching
    event bumps it, so a heap entry scheduled for an older generation is
    stale and is re-armed at the current ``last_time + gap`` when it fires.
    """

    __slots__ = ("gap", "window", "last_time", "generation", "armed")

    def __init__(self, query: Query, ctx: int) -> None:
        super().__init__(query, ctx)
        assert query.window.gap is not None
        self.gap = query.window.gap
        self.window: WindowInstance | None = None
        self.last_time: int | None = None
        self.generation = 0
        #: whether a tentative end punctuation is currently in the heap
        self.armed = False

    def touch(self, time: int) -> None:
        """Record a matching event at ``time`` (post-insert)."""
        self.last_time = time
        self.generation += 1

    @property
    def tentative_end(self) -> int:
        assert self.last_time is not None
        return self.last_time + self.gap


class UserDefinedWindowTracker(_TrackerBase):
    """Marker-delimited windows (Sec 2.1).

    With no ``start_marker`` the windows are back-to-back: a new window
    opens at the first relevant event after the previous window closed.
    Marker relevance honours the query's key selection but ignores value
    bounds — a trip-end marker ends the trip regardless of the reading
    it is attached to.
    """

    __slots__ = ("start_marker", "end_marker", "key", "window")

    def __init__(self, query: Query, ctx: int) -> None:
        super().__init__(query, ctx)
        self.start_marker = query.window.start_marker
        self.end_marker = query.window.end_marker
        self.key = query.selection.key
        self.window: WindowInstance | None = None

    def relevant(self, event: Event) -> bool:
        return self.key is None or event.key == self.key

    def opens_at(self, event: Event) -> bool:
        """Whether ``event`` should open a window (checked pre-insert)."""
        if self.window is not None or not self.relevant(event):
            return False
        if self.start_marker is None:
            return True
        return event.marker == self.start_marker

    def closes_at(self, event: Event) -> bool:
        """Whether ``event`` ends the open window (checked post-insert)."""
        return (
            self.window is not None
            and self.relevant(event)
            and event.marker == self.end_marker
        )


class CountWindowTracker(_TrackerBase):
    """Count-based tumbling/sliding windows.

    ``seen`` counts events matching the query's selection context.  Window
    *m* covers matching events ``[m * slide, m * slide + length)``; its
    start punctuation fires before the first covered event and its end
    punctuation right after the last one.
    """

    __slots__ = ("length", "slide", "seen", "open_windows")

    def __init__(self, query: Query, ctx: int) -> None:
        super().__init__(query, ctx)
        assert query.window.length is not None
        self.length = query.window.length
        self.slide = query.window.effective_slide
        self.seen = 0
        self.open_windows: list[WindowInstance] = []

    def opens_now(self) -> bool:
        """Whether a window starts at the current matching event (pre-insert)."""
        return self.seen % self.slide == 0

    def record(self) -> list[WindowInstance]:
        """Count one matching event (post-insert); return windows now full."""
        self.seen += 1
        full = [
            window
            for window in self.open_windows
            if self.seen - window.start_count >= self.length
        ]
        if full:
            self.open_windows = [w for w in self.open_windows if w not in full]
        return full
