"""Enumerations shared across the Desis reproduction.

The vocabulary follows Section 2 of the paper:

* :class:`WindowType` — tumbling, sliding, session, user-defined (Sec 2.1).
* :class:`WindowMeasure` — time- or count-based windows (Sec 2.1).
* :class:`AggFunction` — the aggregation functions of Table 1 (Sec 4.2.1).
* :class:`OperatorKind` — the shared aggregate operators of Table 1.
* :class:`SharingPolicy` — how aggressively partial results may be shared;
  used to express the baselines of Section 6.1.1 on top of one slicing core.
"""

from __future__ import annotations

import enum

__all__ = [
    "WindowType",
    "WindowMeasure",
    "AggFunction",
    "OperatorKind",
    "SharingPolicy",
    "NodeRole",
]


class WindowType(enum.Enum):
    """Window types from the Dataflow model plus user-defined windows."""

    TUMBLING = "tumbling"
    SLIDING = "sliding"
    SESSION = "session"
    USER_DEFINED = "user_defined"


class WindowMeasure(enum.Enum):
    """How the extent of a window is measured (Sec 2.1)."""

    TIME = "time"
    COUNT = "count"


class AggFunction(enum.Enum):
    """Aggregation functions supported by the engine (Table 1).

    ``MEDIAN`` and ``QUANTILE`` are holistic (non-decomposable); all others
    are decomposable in the terminology of Jesus et al. adopted by the paper.
    """

    SUM = "sum"
    COUNT = "count"
    AVERAGE = "average"
    PRODUCT = "product"
    GEOMETRIC_MEAN = "geometric_mean"
    MAX = "max"
    MIN = "min"
    MEDIAN = "median"
    QUANTILE = "quantile"
    # Extension functions built from an additional operator (Sec 4.2.1:
    # "for complex aggregation functions, users can define new operators
    # to break down functions").
    VARIANCE = "variance"
    STDDEV = "stddev"


class OperatorKind(enum.Enum):
    """The basic operators aggregation functions are broken into (Table 1)."""

    SUM = "sum"
    COUNT = "count"
    MULTIPLICATION = "multiplication"
    DECOMPOSABLE_SORT = "decomposable_sort"
    NON_DECOMPOSABLE_SORT = "non_decomposable_sort"
    #: user-defined extension operator backing variance / stddev
    SUM_OF_SQUARES = "sum_of_squares"


class SharingPolicy(enum.Enum):
    """How queries may be grouped into query-groups.

    * ``FULL`` — Desis: share across window types, measures, and functions.
    * ``SAME_FUNCTION`` — Scotty: share only between identical functions.
    * ``SAME_FUNCTION_AND_MEASURE`` — DeSW: identical function *and* measure.
    * ``NONE`` — one group per query (no sharing at all).
    """

    FULL = "full"
    SAME_FUNCTION = "same_function"
    SAME_FUNCTION_AND_MEASURE = "same_function_and_measure"
    NONE = "none"


class NodeRole(enum.Enum):
    """Role of a node in a decentralized topology (Sec 2.4)."""

    ROOT = "root"
    INTERMEDIATE = "intermediate"
    LOCAL = "local"
