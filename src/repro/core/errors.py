"""Exception hierarchy for the Desis reproduction.

All exceptions raised by this package derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
letting programming errors (``TypeError`` and friends) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "QueryError",
    "WindowError",
    "EngineError",
    "OutOfOrderError",
    "TopologyError",
    "CodecError",
    "ClusterError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class QueryError(ReproError):
    """An invalid query specification (bad window parameters, bad function)."""


class WindowError(ReproError):
    """Invalid window bookkeeping request (unknown window, bad punctuation)."""


class EngineError(ReproError):
    """The aggregation engine was driven incorrectly (e.g. reused after close)."""


class OutOfOrderError(EngineError):
    """An event arrived with a timestamp older than the stream's progress.

    The paper's evaluation replays in-order streams; the engine checks this
    invariant instead of silently producing wrong windows.
    """


class TopologyError(ReproError):
    """The decentralized topology is malformed (cycles, orphans, no root)."""


class CodecError(ReproError):
    """A message could not be encoded or decoded."""


class ClusterError(ReproError):
    """A cluster-level operation failed (unknown node, duplicate query id)."""
