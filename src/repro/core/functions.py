"""Aggregation functions and their decomposition into operators (Table 1).

A :class:`FunctionSpec` is an aggregation function plus its parameters (only
``quantile`` has one).  Two specs are equal only if the parameters match,
which is why a workload of 1000 distinct quantile queries forces the
same-function baselines into 1000 query-groups (Fig 9c) while Desis serves
them all from one shared non-decomposable sort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.core.errors import QueryError
from repro.core.types import AggFunction, OperatorKind

__all__ = [
    "FunctionSpec",
    "operators_for",
    "plan_operators",
    "finalize",
    "is_decomposable",
]

#: Table 1 of the paper: aggregation function -> set of operators.
_TABLE_1: dict[AggFunction, frozenset[OperatorKind]] = {
    AggFunction.SUM: frozenset({OperatorKind.SUM}),
    AggFunction.COUNT: frozenset({OperatorKind.COUNT}),
    AggFunction.AVERAGE: frozenset({OperatorKind.SUM, OperatorKind.COUNT}),
    AggFunction.PRODUCT: frozenset({OperatorKind.MULTIPLICATION}),
    AggFunction.GEOMETRIC_MEAN: frozenset(
        {OperatorKind.MULTIPLICATION, OperatorKind.COUNT}
    ),
    AggFunction.MAX: frozenset({OperatorKind.DECOMPOSABLE_SORT}),
    AggFunction.MIN: frozenset({OperatorKind.DECOMPOSABLE_SORT}),
    AggFunction.MEDIAN: frozenset({OperatorKind.NON_DECOMPOSABLE_SORT}),
    AggFunction.QUANTILE: frozenset({OperatorKind.NON_DECOMPOSABLE_SORT}),
    # Extension functions via the user-defined sum-of-squares operator:
    # they still share the sum and count with average/sum/count queries.
    AggFunction.VARIANCE: frozenset(
        {OperatorKind.SUM, OperatorKind.COUNT, OperatorKind.SUM_OF_SQUARES}
    ),
    AggFunction.STDDEV: frozenset(
        {OperatorKind.SUM, OperatorKind.COUNT, OperatorKind.SUM_OF_SQUARES}
    ),
}

#: Holistic functions that cannot be computed from constant-size partials.
_NON_DECOMPOSABLE = frozenset({AggFunction.MEDIAN, AggFunction.QUANTILE})

#: Stable execution order for operator states inside a slice.
_OPERATOR_ORDER = {kind: index for index, kind in enumerate(OperatorKind)}


@dataclass(slots=True, frozen=True)
class FunctionSpec:
    """An aggregation function together with its parameters.

    Attributes:
        fn: the aggregation function.
        quantile: the requested quantile in ``(0, 1)``; only valid (and
            required) when ``fn`` is :attr:`AggFunction.QUANTILE`.
    """

    fn: AggFunction
    quantile: float | None = None

    def __post_init__(self) -> None:
        if self.fn is AggFunction.QUANTILE:
            if self.quantile is None or not 0.0 < self.quantile < 1.0:
                raise QueryError(
                    f"quantile function needs a quantile in (0, 1), "
                    f"got {self.quantile!r}"
                )
        elif self.quantile is not None:
            raise QueryError(f"{self.fn.value} takes no quantile parameter")

    def __str__(self) -> str:
        if self.fn is AggFunction.QUANTILE:
            return f"quantile({self.quantile:g})"
        return self.fn.value


def is_decomposable(spec: FunctionSpec) -> bool:
    """Whether ``spec`` can be computed from constant-size partial results.

    Decomposable functions are pushed down to local nodes in decentralized
    aggregation (Sec 5.1); non-decomposable ones require the root to see all
    values (Sec 5.2).
    """
    return spec.fn not in _NON_DECOMPOSABLE


def operators_for(spec: FunctionSpec) -> frozenset[OperatorKind]:
    """The operators ``spec`` is broken into (Table 1)."""
    return _TABLE_1[spec.fn]


def plan_operators(specs: Iterable[FunctionSpec]) -> tuple[OperatorKind, ...]:
    """Plan the shared operator set for a query-group.

    The set is the union of each function's operators, with one reduction:
    if a non-decomposable sort is required anyway, the decomposable sort is
    subsumed by it — min/max can read the sorted run (Sec 4.2.1), so the
    engine never executes both sorts for the same events.
    """
    kinds: set[OperatorKind] = set()
    for spec in specs:
        kinds |= operators_for(spec)
    if OperatorKind.NON_DECOMPOSABLE_SORT in kinds:
        kinds.discard(OperatorKind.DECOMPOSABLE_SORT)
    return tuple(sorted(kinds, key=_OPERATOR_ORDER.__getitem__))


def _quantile_from_sorted(values: list[float], q: float) -> float:
    """Linear-interpolation quantile of an ascending ``values`` list."""
    position = q * (len(values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(values) - 1)
    fraction = position - lower
    return values[lower] * (1.0 - fraction) + values[upper] * fraction


def finalize(spec: FunctionSpec, partials: Mapping[OperatorKind, Any]):
    """Compute the final value of ``spec`` from merged operator partials.

    ``partials`` may omit operators the window never executed (an empty
    selection context); the operator identities are assumed for the missing
    entries.  Returns ``None`` for functions that are undefined on empty
    windows (average, geometric mean, min/max, median, quantile).
    """
    fn = spec.fn
    if fn is AggFunction.SUM:
        return partials.get(OperatorKind.SUM, 0.0)
    if fn is AggFunction.COUNT:
        return partials.get(OperatorKind.COUNT, 0)
    if fn is AggFunction.AVERAGE:
        count = partials.get(OperatorKind.COUNT, 0)
        if count == 0:
            return None
        return partials.get(OperatorKind.SUM, 0.0) / count
    if fn is AggFunction.PRODUCT:
        return partials.get(OperatorKind.MULTIPLICATION, 1.0)
    if fn is AggFunction.GEOMETRIC_MEAN:
        count = partials.get(OperatorKind.COUNT, 0)
        if count == 0:
            return None
        product = partials.get(OperatorKind.MULTIPLICATION, 1.0)
        if product < 0.0:
            raise QueryError("geometric mean is undefined for negative products")
        return product ** (1.0 / count)
    if fn in (AggFunction.MAX, AggFunction.MIN):
        extrema = partials.get(OperatorKind.DECOMPOSABLE_SORT)
        if extrema is not None:
            return extrema[1] if fn is AggFunction.MAX else extrema[0]
        values = partials.get(OperatorKind.NON_DECOMPOSABLE_SORT)
        if not values:
            return None
        return values[-1] if fn is AggFunction.MAX else values[0]
    if fn is AggFunction.MEDIAN:
        values = partials.get(OperatorKind.NON_DECOMPOSABLE_SORT)
        if not values:
            return None
        return _quantile_from_sorted(values, 0.5)
    if fn is AggFunction.QUANTILE:
        values = partials.get(OperatorKind.NON_DECOMPOSABLE_SORT)
        if not values:
            return None
        assert spec.quantile is not None
        return _quantile_from_sorted(values, spec.quantile)
    if fn in (AggFunction.VARIANCE, AggFunction.STDDEV):
        count = partials.get(OperatorKind.COUNT, 0)
        if count == 0:
            return None
        mean = partials.get(OperatorKind.SUM, 0.0) / count
        squares = partials.get(OperatorKind.SUM_OF_SQUARES, 0.0)
        # Population variance; clamp tiny negative float residue.
        variance = max(squares / count - mean * mean, 0.0)
        if fn is AggFunction.VARIANCE:
            return variance
        return variance**0.5
    raise QueryError(f"unknown aggregation function: {fn!r}")
