"""Bounded out-of-order tolerance.

The engines in this package consume in-order streams (the evaluation's
generators are in-order, Sec 6.1.2).  Real decentralized sources can be
slightly disordered, so this module provides the standard front-end: a
:class:`ReorderBuffer` holds events for a bounded *lateness* and releases
them in timestamp order once the stream's high-water mark has passed them,
and :class:`ReorderingProcessor` wraps any
:class:`~repro.baselines.api.StreamProcessor` with one.

Events later than the bound are counted and dropped (or raise, if
configured) — the same contract watermark-based SPEs offer.
"""

from __future__ import annotations

import heapq
from typing import Iterable

from repro.baselines.api import StreamProcessor
from repro.core.errors import OutOfOrderError, ReproError
from repro.core.event import Event
from repro.core.results import ResultSink

__all__ = ["ReorderBuffer", "ReorderingProcessor"]


class ReorderBuffer:
    """Releases buffered events in timestamp order under bounded lateness.

    An event is *safe* to release once ``high_water - max_lateness`` has
    passed its timestamp: no event older than that may still arrive (by
    the lateness contract).  ``push`` returns the newly safe events, in
    order; ``flush`` drains the rest at end of stream.
    """

    def __init__(self, max_lateness: int, *, on_late: str = "drop") -> None:
        if max_lateness < 0:
            raise ReproError("max_lateness must be non-negative")
        if on_late not in ("drop", "raise"):
            raise ReproError(f"unknown on_late policy: {on_late!r}")
        self.max_lateness = max_lateness
        self.on_late = on_late
        self._heap: list[tuple[int, int, Event]] = []
        self._seq = 0
        self.high_water: int | None = None
        #: timestamps strictly below this boundary have been released and
        #: may no longer arrive
        self.safe_to: int | None = None
        self.late_dropped = 0

    def push(self, event: Event) -> list[Event]:
        """Insert one event; return the events that are now safe, in order."""
        if self.safe_to is not None and event.time < self.safe_to:
            if self.on_late == "raise":
                raise OutOfOrderError(
                    f"event at t={event.time} is later than the allowed "
                    f"lateness (safe boundary is {self.safe_to})"
                )
            self.late_dropped += 1
            return []
        self._seq += 1
        heapq.heappush(self._heap, (event.time, self._seq, event))
        if self.high_water is None or event.time > self.high_water:
            self.high_water = event.time
        return self._release(self.high_water - self.max_lateness)

    def _release(self, up_to: int) -> list[Event]:
        if self.safe_to is None or up_to > self.safe_to:
            self.safe_to = up_to
        released = []
        while self._heap and self._heap[0][0] <= up_to:
            released.append(heapq.heappop(self._heap)[2])
        return released

    def flush(self) -> list[Event]:
        """Drain every buffered event in order (end of stream)."""
        released = [heapq.heappop(self._heap)[2] for _ in range(len(self._heap))]
        if released and (self.safe_to is None or released[-1].time > self.safe_to):
            self.safe_to = released[-1].time
        return released

    def __len__(self) -> int:
        return len(self._heap)


class ReorderingProcessor:
    """Any stream processor, fed through a :class:`ReorderBuffer`.

    Satisfies the same driving protocol, so the whole benchmark harness
    works on disordered streams::

        processor = ReorderingProcessor(DesisProcessor(queries),
                                        max_lateness=500)
    """

    def __init__(self, inner: StreamProcessor, max_lateness: int,
                 *, on_late: str = "drop") -> None:
        self.inner = inner
        self.buffer = ReorderBuffer(max_lateness, on_late=on_late)
        self.name = f"{inner.name}+reorder"

    @property
    def sink(self) -> ResultSink:
        return self.inner.sink

    @property
    def stats(self):
        return self.inner.stats

    @property
    def late_dropped(self) -> int:
        return self.buffer.late_dropped

    def process(self, event: Event) -> None:
        for ready in self.buffer.push(event):
            self.inner.process(ready)

    def process_many(self, events: Iterable[Event]) -> None:
        for event in events:
            self.process(event)

    def advance(self, time: int) -> None:
        """A watermark promises no events before ``time`` will arrive."""
        for ready in self.buffer._release(time):
            self.inner.process(ready)
        self.inner.advance(time)

    def close(self, at_time: int | None = None) -> ResultSink:
        for ready in self.buffer.flush():
            self.inner.process(ready)
        return self.inner.close(at_time)
