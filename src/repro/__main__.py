"""Command-line interface: run queries, compare systems, demo a cluster.

Examples::

    python -m repro run "SELECT AVG(value) FROM stream WINDOW TUMBLING 5s" \
        --events 50000 --rate 2000

    python -m repro compare --queries 100 --events 100000

    python -m repro cluster --locals 4 --events 20000 --function median \
        --trace --trace-out trace.jsonl --metrics-out metrics.json

    python -m repro report --locals 4 --events 20000 --drop-rate 0.01

    python -m repro conformance --seed 7 --runs 25 --out conformance-out
"""

from __future__ import annotations

import argparse
import difflib
import sys

from repro.baselines import CENTRALIZED_SYSTEMS, ShardedDesisProcessor
from repro.cluster import CentralizedCluster, ClusterConfig, DesisCluster
from repro.core.config import EngineConfig
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction
from repro.datagen import DataGenerator, DataGeneratorConfig
from repro.harness import (
    fmt_rate,
    print_table,
    quantile_queries,
    run_processor,
    tumbling_queries,
)
from repro.interface import DesisSession
from repro.metrics import breakdown, fmt_bytes
from repro.network.simnet import CrashWindow, FaultPlan
from repro.network.topology import three_tier
from repro.obs import (
    STAGES,
    MetricsRegistry,
    TraceRecorder,
    build_window_traces,
    compute_critical_path,
    compute_critical_paths,
    configure_logging,
    publish_cluster_result,
    publish_engine_stats,
    publish_shard_stats,
    publish_span_metrics,
    render_report,
    render_waterfall,
    top_slowest,
    write_chrome_trace,
    write_metrics,
    write_spans_jsonl,
    write_trace_jsonl,
)


def _events(args, n_keys: int = 4):
    config = DataGeneratorConfig(
        keys=tuple(f"k{i}" for i in range(n_keys)),
        rate=args.rate,
        gap_every_ms=getattr(args, "gap_every", None),
        marker=getattr(args, "marker", None),
    )
    return DataGenerator(config, seed=args.seed)


def _engine_config(args, **extra) -> EngineConfig:
    """Resolve the shared engine flags; ``None`` means the engine default."""
    return EngineConfig(
        merge_mode=args.merge_mode or "incremental",
        punctuation_mode=args.punctuation_mode or "heap",
        shards=args.shards or 1,
        **extra,
    )


def cmd_run(args) -> int:
    trace = bool(args.trace or args.trace_out)
    if trace and (args.shards or 1) > 1:
        raise SystemExit(
            "repro run: --trace is not supported with --shards > 1 "
            "(trace recording is single-process)"
        )
    recorder = TraceRecorder() if trace else None
    session = DesisSession(
        config=_engine_config(
            args,
            measure_latency=args.measure_latency,
            latency_expiry_horizon_ms=(
                args.latency_expiry_ms if args.latency_expiry_ms > 0 else None
            ),
        ),
        recorder=recorder,
    )
    for text in args.query:
        session.submit(text)
    session.process_many(_events(args).events(args.events))
    results = session.close()
    print(
        f"{args.events} events -> {len(results)} window results; "
        f"{session.stats.calculations / max(session.stats.events, 1):.2f} "
        f"operator executions/event; "
        f"{session._engine.group_count} query-group(s)"
    )
    shown = 0
    for result in results:
        print(f"  {result}")
        shown += 1
        if shown >= args.limit:
            remaining = len(results) - shown
            if remaining:
                print(f"  ... {remaining} more")
            break
    if args.measure_latency:
        summary = session.latency_summary()
        print(
            f"latency: n={summary.count} mean={summary.mean * 1e3:.3f}ms "
            f"p50={summary.p50 * 1e3:.3f}ms p99={summary.p99 * 1e3:.3f}ms "
            f"expired={summary.expired_samples}"
        )
    shard_stats = session.shard_stats
    if shard_stats is not None:
        print(
            f"shards: {shard_stats.shards} workers, per-shard events "
            f"{shard_stats.events}, {shard_stats.reduce_merge_ops} reduce "
            f"merge op(s) over {shard_stats.windows_reduced} window(s)"
        )
    if recorder is not None:
        print(f"trace: {len(recorder)} events recorded")
        if args.trace_out:
            written = write_trace_jsonl(recorder, args.trace_out)
            print(f"trace: {written} events -> {args.trace_out}")
    if args.metrics_out:
        registry = MetricsRegistry()
        publish_engine_stats(registry, session.stats)
        if shard_stats is not None:
            publish_shard_stats(registry, shard_stats)
        write_metrics(registry, args.metrics_out)
        print(f"metrics -> {args.metrics_out}")
    return 0


def cmd_compare(args) -> int:
    events = list(_events(args).events(args.events))
    if args.workload == "tumbling":
        queries = tumbling_queries(args.queries)
    else:
        queries = quantile_queries(args.queries)
    merge_mode = args.merge_mode or "incremental"
    rows = []
    measured: list[tuple[str, object]] = []
    for name, factory in CENTRALIZED_SYSTEMS.items():
        if name in ("CeBuffer", "DeBucket") and args.queries > 200:
            rows.append([name, "-", "-"])
            continue
        if name == "Desis":
            factory = lambda q, sink=None: CENTRALIZED_SYSTEMS["Desis"](  # noqa: E731
                q, sink=sink, merge_mode=merge_mode
            )
        stats = run_processor(factory, queries, events)
        measured.append((name, stats))
        rows.append(
            [name, fmt_rate(stats.events_per_second), f"{stats.calculations:,}"]
        )
    if (args.shards or 1) > 1:
        shards = args.shards
        stats = run_processor(
            lambda q, sink=None: ShardedDesisProcessor(
                q, sink=sink, merge_mode=merge_mode, shards=shards
            ),
            queries,
            events,
        )
        measured.append((f"Desis x{shards}", stats))
        rows.append(
            [
                f"Desis x{shards}",
                fmt_rate(stats.events_per_second),
                f"{stats.calculations:,}",
            ]
        )
    print_table(
        f"{args.queries} {args.workload} queries over {args.events} events",
        ["system", "throughput", "operator executions"],
        rows,
    )
    if args.metrics_out:
        registry = MetricsRegistry()
        for name, stats in measured:
            registry.gauge("compare.events_per_s", system=name).set(
                stats.events_per_second
            )
            registry.counter("compare.calculations", system=name).inc(
                stats.calculations
            )
        write_metrics(registry, args.metrics_out)
        print(f"metrics -> {args.metrics_out}")
    return 0


def cmd_cluster(args) -> int:
    fn = AggFunction(args.function)
    queries = [Query.of("q", WindowSpec.tumbling(args.window_ms), fn)]
    topology = three_tier(args.locals, 1)
    streams = _events(args).streams(args.locals, args.events)
    trace = bool(args.trace or args.trace_out)
    config = ClusterConfig(
        tick_interval=1_000, trace=trace, engine=_engine_config(args)
    )
    desis = DesisCluster(queries, topology, config=config).run(
        {k: list(v) for k, v in streams.items()}
    )
    from repro.baselines import ScottyProcessor

    central = CentralizedCluster(
        queries, topology, ScottyProcessor, config=config
    ).run({k: list(v) for k, v in streams.items()})
    print_table(
        f"{args.locals} local nodes, {fn.value} over {args.window_ms}ms windows",
        ["deployment", "results", "network data", "modeled throughput"],
        [
            [
                "Desis (decentralized)",
                len(desis.sink),
                fmt_bytes(breakdown(desis.network).data_bytes),
                fmt_rate(desis.modeled_parallel_throughput),
            ],
            [
                "Scotty (centralized)",
                len(central.sink),
                fmt_bytes(breakdown(central.network).data_bytes),
                fmt_rate(central.modeled_parallel_throughput),
            ],
        ],
    )
    if trace:
        print(f"trace: {len(desis.recorder)} events recorded")
        if args.trace_out:
            written = write_trace_jsonl(desis.recorder, args.trace_out)
            print(f"trace: {written} events -> {args.trace_out}")
    if args.metrics_out:
        registry = MetricsRegistry()
        publish_cluster_result(registry, desis)
        write_metrics(registry, args.metrics_out)
        print(f"metrics -> {args.metrics_out}")
    return 0


def _parse_crash(spec: str) -> CrashWindow:
    """``node:start:end`` (state-losing restart) or ``node:start``
    (permanent death, failed over to the parent)."""
    parts = spec.split(":")
    if len(parts) == 2:
        return CrashWindow(parts[0], int(parts[1]), None)
    if len(parts) == 3:
        return CrashWindow(parts[0], int(parts[1]), int(parts[2]),
                           lose_state=True)
    raise SystemExit(f"bad --crash spec {spec!r}: want node:start[:end]")


def _run_traced_desis(args):
    """One traced Desis run from the shared report/profile flag set."""
    fn = AggFunction(args.function)
    queries = [Query.of("q", WindowSpec.tumbling(args.window_ms), fn)]
    topology = three_tier(args.locals, 1)
    streams = _events(args).streams(args.locals, args.events)
    crashes = tuple(_parse_crash(spec) for spec in args.crash or ())
    fault_plan = (
        FaultPlan(seed=args.seed, drop_rate=args.drop_rate, crashes=crashes)
        if args.drop_rate or crashes
        else None
    )
    config = ClusterConfig(
        tick_interval=1_000,
        trace=True,
        engine=_engine_config(args),
        fault_plan=fault_plan,
        checkpoint_interval=args.checkpoint_interval,
        checkpoint_dir=args.checkpoint_dir,
        node_timeout=args.node_timeout,
        # heartbeats must outpace the timeout for the sweep to see silence
        heartbeat_interval=max(1, min(5_000, args.node_timeout // 3)),
        latency_ms=args.link_latency,
        bandwidth_bytes_per_ms=args.bandwidth,
        channel_credit_bytes=args.channel_credit_bytes,
        channel_credit_frames=args.channel_credit_frames,
        staging_limit=args.staging_limit,
        retention_limit=args.retention_limit,
        stall_timeout=args.stall_timeout,
    )
    return DesisCluster(queries, topology, config=config).run(
        {k: list(v) for k, v in streams.items()}
    )


def cmd_report(args) -> int:
    """Run a Desis deployment and render its full observability report."""
    result = _run_traced_desis(args)
    registry = MetricsRegistry()
    publish_cluster_result(registry, result)
    print(render_report(
        registry,
        f"Desis run report: {args.locals} locals, {args.events} events/local",
    ))
    print(f"\ntrace: {len(result.recorder)} events recorded")
    if args.explain and len(result.sink):
        provenance = result.recorder.explain_window(result.sink.results[-1])
        print("last window provenance:")
        print(
            f"  {provenance.query_id}[{provenance.start}.."
            f"{provenance.end}) emitted_at={provenance.emitted_at} "
            f"events={provenance.event_count}"
        )
        print(f"  sources: {', '.join(provenance.sources) or '-'}")
        print(f"  slices: {len(provenance.slices)}  hops: {len(provenance.hops)}")
        for hop in provenance.hops:
            print(f"    t={hop.at} {hop.kind} @ {hop.node}")
        print(f"  retransmits before emit: {provenance.total_retransmits}")
        if provenance.completeness < 1.0 or provenance.sheds:
            print(
                f"  DEGRADED: completeness={provenance.completeness:.3f} "
                f"({len(provenance.sheds)} shed event(s) intersect)"
            )
            for shed in provenance.sheds:
                print(
                    f"    t={shed.at} buffer.shed @ {shed.node} "
                    f"[{shed.data.get('start')}..{shed.data.get('end')}) "
                    f"{shed.data.get('records', 0)} record(s)"
                )
        path = compute_critical_path(
            result.recorder, result.sink.results[-1]
        )
        print("critical path:")
        for line in render_waterfall(path).splitlines():
            print(f"  {line}")
    if args.trace_out:
        written = write_trace_jsonl(result.recorder, args.trace_out)
        print(f"trace: {written} events -> {args.trace_out}")
    if args.metrics_out:
        write_metrics(registry, args.metrics_out)
        print(f"metrics -> {args.metrics_out}")
    return 0


def cmd_profile(args) -> int:
    """Profile a Desis run: top-N slowest windows, stage attribution."""
    result = _run_traced_desis(args)
    results = list(result.sink.results)
    paths = compute_critical_paths(result.recorder, results)
    print(
        f"{len(results)} windows emitted; "
        f"{len(paths)} explainable from the trace ring"
    )
    if result.recorder.dropped:
        print(
            f"warning: {result.recorder.dropped} trace events evicted — "
            "the oldest windows have no spans"
        )
    for rank, path in enumerate(top_slowest(result.recorder, results, args.top), 1):
        print(f"\n#{rank} {render_waterfall(path)}")
    totals: dict[str, int] = {}
    for path in paths:
        for stage, ms in path.stage_totals().items():
            totals[stage] = totals.get(stage, 0) + ms
    grand = sum(totals.values())
    if grand:
        print("\nstage totals across explainable windows:")
        for stage in STAGES:
            ms = totals.get(stage, 0)
            if ms:
                print(
                    f"  {stage:<14} {ms:>10} ms  {100.0 * ms / grand:5.1f}%"
                )
    if args.chrome_out or args.spans_out:
        traces = build_window_traces(result.recorder, results)
        if args.chrome_out:
            write_chrome_trace(traces, args.chrome_out)
            print(
                f"chrome trace -> {args.chrome_out} "
                "(open in Perfetto or chrome://tracing)"
            )
        if args.spans_out:
            written = write_spans_jsonl(traces, args.spans_out)
            print(f"spans: {written} window traces -> {args.spans_out}")
    if args.metrics_out:
        registry = MetricsRegistry()
        publish_cluster_result(registry, result)
        publish_span_metrics(registry, paths)
        write_metrics(registry, args.metrics_out)
        print(f"metrics -> {args.metrics_out}")
    return 0


def cmd_conformance(args) -> int:
    """Run the differential-fuzzing campaign and print its summary."""
    from repro.conformance import (
        publish_conformance_counters,  # noqa: F401  (re-export sanity)
        render_conformance_summary,
        run_conformance,
    )

    # non-None shared engine flags pin the scenario knobs campaign-wide;
    # left at None the generator's own draws stand
    overrides = {}
    if args.merge_mode:
        overrides["merge_mode"] = args.merge_mode
    if args.punctuation_mode:
        overrides["punctuation_mode"] = args.punctuation_mode
    if args.shards:
        overrides["shards"] = args.shards
    registry = MetricsRegistry()
    report = run_conformance(
        seed=args.seed,
        runs=args.runs,
        out=args.out,
        shrink=not args.no_shrink,
        metamorphic=not args.no_metamorphic,
        max_events_per_node=args.max_events,
        registry=registry,
        overrides=overrides or None,
    )
    print(render_conformance_summary(report))
    if args.out:
        print(f"report -> {args.out}/report.json")
    if args.metrics_out:
        write_metrics(registry, args.metrics_out)
        print(f"metrics -> {args.metrics_out}")
    return 0 if report["ok"] else 1


#: one-line description per subcommand, shared by --help and the
#: unknown-subcommand hint
COMMANDS: dict[str, str] = {
    "run": "execute textual queries on the single-node engine",
    "compare": "compare all centralized systems on one workload",
    "cluster": "run decentralized (Desis) vs centralized deployments",
    "report": "run Desis and print the observability report",
    "profile": "run Desis and attribute per-window latency to stages",
    "conformance": "differential fuzzing across engines, clusters, and faults",
}


class _Parser(argparse.ArgumentParser):
    """Argparse with a friendlier unknown-subcommand error.

    ``repro bogus`` exits 2 with the list of valid subcommands and a
    did-you-mean hint instead of argparse's bare invalid-choice message.
    """

    def error(self, message: str) -> None:  # noqa: D401 - argparse hook
        if "invalid choice" in message and self.prog == "repro":
            bad = message.split("invalid choice: ", 1)[1].split("'")[1]
            lines = [f"repro: error: unknown command {bad!r}"]
            close = difflib.get_close_matches(bad, COMMANDS, n=1)
            if close:
                lines.append(f"hint: did you mean {close[0]!r}?")
            lines.append("valid commands:")
            lines.extend(
                f"  {name:<12} {blurb}" for name, blurb in COMMANDS.items()
            )
            self.exit(2, "\n".join(lines) + "\n")
        super().error(message)


#: the flag set every verb shares, pinned by tests/test_cli.py
SHARED_FLAGS = (
    "--seed", "--metrics-out", "--shards", "--merge-mode",
    "--punctuation-mode",
)


def _common_parent() -> argparse.ArgumentParser:
    """Flags every verb takes: campaign seed and metrics export."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--seed", type=int, default=0,
                        help="workload / campaign seed (same seed -> same "
                             "events, same report)")
    parent.add_argument("--metrics-out", default=None, dest="metrics_out",
                        metavar="PATH",
                        help="write run metrics (.json, or .prom/.txt for "
                             "Prometheus text)")
    return parent


def _engine_parent() -> argparse.ArgumentParser:
    """The shared engine knobs — registered once, inherited by every verb.

    All three default to ``None`` (= the engine's own default), so each
    handler can tell \"user asked for X\" from \"user said nothing\" —
    conformance, for instance, only pins a scenario knob when the flag
    was actually given.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--shards", type=int, default=None, metavar="N",
                        help="partition the stream by key hash across N "
                             "worker processes with a deterministic reduce "
                             "at window close (DESIGN.md §13); fixed-size "
                             "time windows only; simulated cluster verbs "
                             "record it on ClusterConfig.engine without "
                             "forking (their parallelism is modeled "
                             "analytically)")
    parent.add_argument("--merge-mode", choices=("incremental", "exact"),
                        default=None, dest="merge_mode",
                        help="window-close merging: 'incremental' reuses "
                             "shared-slice merges across overlapping "
                             "windows (default), 'exact' keeps the plain "
                             "full-range scan")
    parent.add_argument("--punctuation-mode", choices=("heap", "scan"),
                        default=None, dest="punctuation_mode",
                        help="how window-close punctuations are found: "
                             "'heap' (scheduled min-heap, default) or "
                             "'scan' (linear tracker scan); compare ignores "
                             "it — each baseline's mode is part of its "
                             "identity (Sec 6.1.1)")
    return parent


def _trace_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--trace", action="store_true",
                        help="record slice-lifecycle traces")
    parent.add_argument("--trace-out", default=None, dest="trace_out",
                        metavar="PATH", help="write the trace as JSON-lines")
    return parent


def _deployment_parent() -> argparse.ArgumentParser:
    """The traced-deployment knobs behind cluster, report, and profile."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--locals", type=int, default=4)
    parent.add_argument("--events", type=int, default=20_000,
                        help="events per local node")
    parent.add_argument("--rate", type=float, default=10_000.0)
    parent.add_argument("--function", default="average",
                        choices=[fn.value for fn in AggFunction
                                 if fn is not AggFunction.QUANTILE])
    parent.add_argument("--window-ms", type=int, default=1_000)
    return parent


def _fault_parent() -> argparse.ArgumentParser:
    """Fault-injection / overload knobs shared by report and profile."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--drop-rate", type=float, default=0.0,
                        dest="drop_rate",
                        help="run under a seeded fault plan with this "
                             "per-link drop probability")
    parent.add_argument("--crash", action="append",
                        metavar="NODE:START[:END]",
                        help="inject a crash window (sim ms); with END the "
                             "node loses state and restarts from its latest "
                             "checkpoint, without END it dies permanently "
                             "and its children fail over (repeatable)")
    parent.add_argument("--checkpoint-interval", type=int, default=None,
                        dest="checkpoint_interval", metavar="MS",
                        help="persist intermediate/root state snapshots at "
                             "this sim-time cadence (default: off)")
    parent.add_argument("--checkpoint-dir", default=None,
                        dest="checkpoint_dir", metavar="DIR",
                        help="write checkpoints as on-disk .ckpt files "
                             "instead of the in-memory store")
    parent.add_argument("--node-timeout", type=int, default=15_000,
                        dest="node_timeout", metavar="MS",
                        help="heartbeat silence before a parent declares a "
                             "child dead (drives failover of permanent "
                             "--crash windows)")
    parent.add_argument("--link-latency", type=float, default=1.0,
                        dest="link_latency", metavar="MS",
                        help="per-link one-way latency (default: 1)")
    parent.add_argument("--bandwidth", type=float, default=None,
                        metavar="BYTES_PER_MS",
                        help="per-link bandwidth cap; unset = unlimited "
                             "(~131 models the paper's 1G Ethernet)")
    parent.add_argument("--channel-credit-bytes", type=int, default=None,
                        dest="channel_credit_bytes", metavar="N",
                        help="per-channel credit window in unacked bytes; "
                             "exhausted credit stalls the sender "
                             "(DESIGN.md §12)")
    parent.add_argument("--channel-credit-frames", type=int, default=None,
                        dest="channel_credit_frames", metavar="N",
                        help="per-channel credit window in unacked frames")
    parent.add_argument("--staging-limit", type=int, default=None,
                        dest="staging_limit", metavar="RECORDS",
                        help="per-group staging cap; beyond it the oldest "
                             "whole slices are shed and affected windows "
                             "emit degraded with completeness < 1.0")
    parent.add_argument("--retention-limit", type=int, default=None,
                        dest="retention_limit", metavar="BATCHES",
                        help="cap on re-ship retention batches kept for "
                             "crash recovery")
    parent.add_argument("--stall-timeout", type=int, default=None,
                        dest="stall_timeout", metavar="MS",
                        help="credit-stall duration before a parent "
                             "soft-evicts a slow consumer (default: "
                             "--node-timeout)")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = _Parser(
        prog="repro",
        description="Desis reproduction: multi-query window aggregation",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning"),
        default=None,
        help="enable structured logging at this level",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    common = _common_parent()
    engine = _engine_parent()
    trace = _trace_parent()
    deployment = _deployment_parent()
    fault = _fault_parent()

    run_cmd = sub.add_parser("run", help=COMMANDS["run"],
                             parents=[common, engine, trace])
    run_cmd.add_argument("query", nargs="+", help="query strings")
    run_cmd.add_argument("--events", type=int, default=50_000)
    run_cmd.add_argument("--rate", type=float, default=2_000.0)
    run_cmd.add_argument("--limit", type=int, default=10,
                         help="max results to print")
    run_cmd.add_argument("--gap-every", type=int, default=None, dest="gap_every")
    run_cmd.add_argument("--marker", default=None)
    run_cmd.add_argument("--measure-latency", action="store_true",
                         dest="measure_latency",
                         help="sample wall-clock event-to-result latency "
                              "through a LatencyProbe")
    run_cmd.add_argument("--latency-expiry-ms", type=int, default=600_000,
                         dest="latency_expiry_ms", metavar="MS",
                         help="event-time horizon after which an unmatched "
                              "latency sample is evicted and counted as "
                              "expired (default: 600000; <= 0 keeps every "
                              "sample forever — unbounded memory)")
    run_cmd.set_defaults(handler=cmd_run)

    compare = sub.add_parser("compare", help=COMMANDS["compare"],
                             parents=[common, engine])
    compare.add_argument("--queries", type=int, default=100)
    compare.add_argument("--events", type=int, default=100_000)
    compare.add_argument("--rate", type=float, default=50_000.0)
    compare.add_argument(
        "--workload", choices=("tumbling", "quantiles"), default="tumbling"
    )
    compare.set_defaults(handler=cmd_compare)

    cluster = sub.add_parser("cluster", help=COMMANDS["cluster"],
                             parents=[common, engine, trace, deployment])
    cluster.set_defaults(handler=cmd_cluster)

    report = sub.add_parser("report", help=COMMANDS["report"],
                            parents=[common, engine, deployment, fault])
    report.add_argument("--explain", action="store_true",
                        help="print the last window's slice provenance and "
                             "critical-path waterfall")
    report.add_argument("--trace-out", default=None, dest="trace_out",
                        metavar="PATH")
    report.set_defaults(handler=cmd_report)

    profile = sub.add_parser("profile", help=COMMANDS["profile"],
                             parents=[common, engine, deployment, fault])
    profile.add_argument("--top", type=int, default=5,
                         help="how many slowest windows to waterfall "
                              "(default: 5)")
    profile.add_argument("--chrome-out", default=None, dest="chrome_out",
                         metavar="PATH",
                         help="write the span trees as a Chrome-trace / "
                              "Perfetto JSON document")
    profile.add_argument("--spans-out", default=None, dest="spans_out",
                         metavar="PATH",
                         help="write the span trees as JSON-lines (one "
                              "window trace per line)")
    profile.set_defaults(handler=cmd_profile)

    conformance = sub.add_parser("conformance", help=COMMANDS["conformance"],
                                 parents=[common, engine])
    conformance.add_argument("--runs", type=int, default=10,
                             help="number of generated scenarios")
    conformance.add_argument("--out", default=None, metavar="DIR",
                             help="write report.json plus a minimized "
                                  "repro-<digest>.py/.json per failure")
    conformance.add_argument("--no-shrink", action="store_true",
                             dest="no_shrink",
                             help="report failures without delta-debugging "
                                  "them to a minimal repro")
    conformance.add_argument("--no-metamorphic", action="store_true",
                             dest="no_metamorphic",
                             help="skip the metamorphic relations (reshard, "
                                  "duplicate-query, goodput)")
    conformance.add_argument("--max-events", type=int, default=160,
                             dest="max_events", metavar="N",
                             help="cap on generated events per node")
    conformance.set_defaults(handler=cmd_conformance)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level:
        configure_logging(args.log_level.upper())
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
