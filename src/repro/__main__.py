"""Command-line interface: run queries, compare systems, demo a cluster.

Examples::

    python -m repro run "SELECT AVG(value) FROM stream WINDOW TUMBLING 5s" \
        --events 50000 --rate 2000

    python -m repro compare --queries 100 --events 100000

    python -m repro cluster --locals 4 --events 20000 --function median
"""

from __future__ import annotations

import argparse
import sys

from repro.baselines import CENTRALIZED_SYSTEMS
from repro.cluster import CentralizedCluster, ClusterConfig, DesisCluster
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction
from repro.datagen import DataGenerator, DataGeneratorConfig
from repro.harness import (
    fmt_rate,
    print_table,
    quantile_queries,
    run_processor,
    tumbling_queries,
)
from repro.interface import DesisSession
from repro.metrics import breakdown, fmt_bytes
from repro.network.topology import three_tier


def _events(args, n_keys: int = 4):
    config = DataGeneratorConfig(
        keys=tuple(f"k{i}" for i in range(n_keys)),
        rate=args.rate,
        gap_every_ms=getattr(args, "gap_every", None),
        marker=getattr(args, "marker", None),
    )
    return DataGenerator(config, seed=args.seed)


def cmd_run(args) -> int:
    session = DesisSession()
    for text in args.query:
        session.submit(text)
    session.process_many(_events(args).events(args.events))
    results = session.close()
    print(
        f"{args.events} events -> {len(results)} window results; "
        f"{session.stats.calculations / max(session.stats.events, 1):.2f} "
        f"operator executions/event; "
        f"{session._engine.group_count} query-group(s)"
    )
    shown = 0
    for result in results:
        print(f"  {result}")
        shown += 1
        if shown >= args.limit:
            remaining = len(results) - shown
            if remaining:
                print(f"  ... {remaining} more")
            break
    return 0


def cmd_compare(args) -> int:
    events = list(_events(args).events(args.events))
    if args.workload == "tumbling":
        queries = tumbling_queries(args.queries)
    else:
        queries = quantile_queries(args.queries)
    rows = []
    for name, factory in CENTRALIZED_SYSTEMS.items():
        if name in ("CeBuffer", "DeBucket") and args.queries > 200:
            rows.append([name, "-", "-"])
            continue
        stats = run_processor(factory, queries, events)
        rows.append(
            [name, fmt_rate(stats.events_per_second), f"{stats.calculations:,}"]
        )
    print_table(
        f"{args.queries} {args.workload} queries over {args.events} events",
        ["system", "throughput", "operator executions"],
        rows,
    )
    return 0


def cmd_cluster(args) -> int:
    fn = AggFunction(args.function)
    queries = [Query.of("q", WindowSpec.tumbling(args.window_ms), fn)]
    topology = three_tier(args.locals, 1)
    streams = _events(args).streams(args.locals, args.events)
    config = ClusterConfig(tick_interval=1_000)
    desis = DesisCluster(queries, topology, config=config).run(
        {k: list(v) for k, v in streams.items()}
    )
    from repro.baselines import ScottyProcessor

    central = CentralizedCluster(
        queries, topology, ScottyProcessor, config=config
    ).run({k: list(v) for k, v in streams.items()})
    print_table(
        f"{args.locals} local nodes, {fn.value} over {args.window_ms}ms windows",
        ["deployment", "results", "network data", "modeled throughput"],
        [
            [
                "Desis (decentralized)",
                len(desis.sink),
                fmt_bytes(breakdown(desis.network).data_bytes),
                fmt_rate(desis.modeled_parallel_throughput),
            ],
            [
                "Scotty (centralized)",
                len(central.sink),
                fmt_bytes(breakdown(central.network).data_bytes),
                fmt_rate(central.modeled_parallel_throughput),
            ],
        ],
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Desis reproduction: multi-query window aggregation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_cmd = sub.add_parser("run", help="execute textual queries")
    run_cmd.add_argument("query", nargs="+", help="query strings")
    run_cmd.add_argument("--events", type=int, default=50_000)
    run_cmd.add_argument("--rate", type=float, default=2_000.0)
    run_cmd.add_argument("--seed", type=int, default=0)
    run_cmd.add_argument("--limit", type=int, default=10,
                         help="max results to print")
    run_cmd.add_argument("--gap-every", type=int, default=None, dest="gap_every")
    run_cmd.add_argument("--marker", default=None)
    run_cmd.set_defaults(handler=cmd_run)

    compare = sub.add_parser("compare", help="compare all systems")
    compare.add_argument("--queries", type=int, default=100)
    compare.add_argument("--events", type=int, default=100_000)
    compare.add_argument("--rate", type=float, default=50_000.0)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--workload", choices=("tumbling", "quantiles"), default="tumbling"
    )
    compare.set_defaults(handler=cmd_compare)

    cluster = sub.add_parser("cluster", help="decentralized vs centralized")
    cluster.add_argument("--locals", type=int, default=4)
    cluster.add_argument("--events", type=int, default=20_000,
                         help="events per local node")
    cluster.add_argument("--rate", type=float, default=10_000.0)
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--function", default="average",
                         choices=[fn.value for fn in AggFunction
                                  if fn is not AggFunction.QUANTILE])
    cluster.add_argument("--window-ms", type=int, default=1_000)
    cluster.set_defaults(handler=cmd_cluster)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
