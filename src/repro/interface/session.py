"""The Desis user-facing session: the paper's interface component (Sec 3.1).

:class:`DesisSession` ties together the interface, query analyzer, window
manager, and aggregation engine for centralized use, with runtime query
management (Sec 3.2)::

    session = DesisSession()
    session.submit("SELECT AVG(value) FROM stream WINDOW TUMBLING 5s")
    session.submit("SELECT MEDIAN(value) FROM stream WINDOW SESSION GAP 30s")
    for event in events:
        session.process(event)
    for result in session.close():
        print(result)

Behavioural knobs live in one frozen :class:`~repro.core.config.EngineConfig`
(``DesisSession(config=EngineConfig(...))``); ``shards`` is common enough
to keep as sugar (``DesisSession(shards=4)`` runs the multi-core sharded
backend, DESIGN.md §13).  The historical per-knob keyword arguments still
work but emit :class:`DeprecationWarning`.

For decentralized deployments build a
:class:`~repro.cluster.desis.DesisCluster` with the same parsed queries.
"""

from __future__ import annotations

import warnings
from typing import Iterable

from repro.core.config import EngineConfig
from repro.core.engine import AggregationEngine, EngineStats
from repro.core.errors import EngineError
from repro.core.event import Event
from repro.core.query import Query
from repro.core.results import ResultSink, WindowResult
from repro.interface.parser import parse_query

__all__ = ["DesisSession"]

_UNSET = object()

#: deprecated ``DesisSession`` keyword → ``EngineConfig`` field; the shim
#: tests pin this mapping so the aliases cannot silently rot.
DEPRECATED_KWARGS = {
    "policy": "policy",
    "merge_mode": "merge_mode",
    "measure_latency": "measure_latency",
    "latency_sample_every": "latency_sample_every",
    "latency_expiry_horizon_ms": "latency_expiry_horizon_ms",
}


class DesisSession:
    """A centralized Desis instance accepting textual or built queries."""

    def __init__(
        self,
        config: EngineConfig | None = None,
        *,
        shards: int | None = None,
        recorder=None,
        policy=_UNSET,
        merge_mode=_UNSET,
        measure_latency=_UNSET,
        latency_sample_every=_UNSET,
        latency_expiry_horizon_ms=_UNSET,
    ) -> None:
        base = config if config is not None else EngineConfig()
        overrides: dict[str, object] = {}
        for keyword, value in (
            ("policy", policy),
            ("merge_mode", merge_mode),
            ("measure_latency", measure_latency),
            ("latency_sample_every", latency_sample_every),
            ("latency_expiry_horizon_ms", latency_expiry_horizon_ms),
        ):
            if value is _UNSET:
                continue
            field = DEPRECATED_KWARGS[keyword]
            warnings.warn(
                f"DesisSession({keyword}=...) is deprecated; pass "
                f"DesisSession(config=EngineConfig({field}=...)) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            overrides[field] = value
        if shards is not None:
            overrides["shards"] = shards
        #: the resolved frozen configuration driving this session
        self.config = base.with_options(**overrides) if overrides else base
        #: optional slice-lifecycle trace recorder handed to the engine
        #: (see :mod:`repro.obs.tracing`); ``None`` keeps tracing off.
        #: Not supported with ``shards > 1`` — workers run out of process.
        self.recorder = recorder
        if recorder is not None and self.config.shards > 1:
            raise EngineError(
                "tracing is not supported with shards > 1: trace events "
                "would interleave across worker processes"
            )
        self._probe = None
        self._engine = None
        self._pending: list[Query] = []
        self._counter = 0

    # -- legacy knob views (read-only; the config is the truth) ----------------

    @property
    def policy(self):
        return self.config.policy

    @property
    def merge_mode(self) -> str:
        return self.config.merge_mode

    @property
    def measure_latency(self) -> bool:
        return self.config.measure_latency

    @property
    def latency_sample_every(self) -> int:
        return self.config.latency_sample_every

    @property
    def latency_expiry_horizon_ms(self) -> int | None:
        return self.config.latency_expiry_horizon_ms

    @property
    def shards(self) -> int:
        return self.config.shards

    # -- query management ------------------------------------------------------------

    def submit(self, query: str | Query, *, query_id: str | None = None) -> str:
        """Register a query (text or :class:`Query`); returns its id.

        Before the first event arrives queries are collected so the
        analyzer can group them together; afterwards they attach at
        stream time (Sec 3.2) — single-process sessions only: the
        sharded backend freezes the query set at start.
        """
        if isinstance(query, str):
            if query_id is None:
                query_id = f"q{self._counter}"
            parsed = parse_query(query, query_id=query_id)
        else:
            parsed = query
            if query_id is not None and query_id != parsed.query_id:
                raise EngineError("query_id conflicts with the Query object")
        self._counter += 1
        if self._engine is None:
            self._pending.append(parsed)
        elif self.config.shards > 1:
            raise EngineError(
                "cannot add queries to a running sharded session: the "
                "worker schedule is fixed at start (submit before the "
                "first event, or run with shards=1)"
            )
        else:
            self._engine.add_query(parsed)
        return parsed.query_id

    def remove(self, query_id: str, *, drain: bool = False) -> None:
        """Remove a running (or pending) query.

        ``drain=True`` implements the paper's "wait for the last window to
        end" removal mode (Sec 3.2); the default removes immediately.
        """
        if self._engine is None:
            before = len(self._pending)
            self._pending = [q for q in self._pending if q.query_id != query_id]
            if len(self._pending) == before:
                raise EngineError(f"unknown query id: {query_id!r}")
            return
        if self.config.shards > 1:
            raise EngineError(
                "cannot remove queries from a running sharded session"
            )
        self._engine.remove_query(query_id, drain=drain)

    @property
    def queries(self) -> list[Query]:
        if self._engine is None:
            return list(self._pending)
        return self._engine.plan.queries

    # -- processing ------------------------------------------------------------------

    def _ensure_engine(self):
        if self._engine is None:
            sink = None
            if self.config.measure_latency:
                from repro.metrics.latency import LatencyProbe

                sink = self._probe = LatencyProbe(
                    sample_every=self.config.latency_sample_every,
                    keep=True,
                    expiry_horizon_ms=self.config.latency_expiry_horizon_ms,
                )
            if self.config.shards > 1:
                from repro.parallel import ShardedEngine

                self._engine = ShardedEngine(
                    self._pending, config=self.config, sink=sink
                )
            else:
                self._engine = AggregationEngine(
                    self._pending,
                    config=self.config,
                    sink=sink,
                    recorder=self.recorder,
                )
            self._pending = []
        return self._engine

    def process(self, event: Event) -> None:
        engine = self._ensure_engine()
        if self._probe is not None:
            self._probe.on_ingest(event)
        engine.process(event)

    def process_many(self, events: Iterable[Event]) -> None:
        engine = self._ensure_engine()
        events = list(events)
        if self._probe is not None:
            for event in events:
                self._probe.on_ingest(event)
        engine.process_batch(events)

    def advance(self, time: int) -> None:
        self._ensure_engine().advance(time)

    def close(self, at_time: int | None = None) -> ResultSink:
        return self._ensure_engine().close(at_time)

    @property
    def results(self) -> list[WindowResult]:
        if self._engine is None:
            return []
        return list(self._engine.sink)

    @property
    def stats(self) -> EngineStats:
        return self._ensure_engine().stats

    @property
    def shard_stats(self):
        """Per-shard counters (``None`` for single-process sessions)."""
        if self._engine is None or self.config.shards <= 1:
            return None
        return self._engine.shard_stats

    def latency_summary(self):
        """Percentile summary of the probe (``None`` unless measuring).

        The summary carries ``expired_samples`` — samples the bounded
        expiry horizon evicted unmatched — which
        :func:`repro.obs.registry.publish_latency_summary` surfaces as
        the ``latency.expired_samples`` counter.
        """
        if self._probe is None:
            return None
        return self._probe.summary()
