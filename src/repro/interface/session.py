"""The Desis user-facing session: the paper's interface component (Sec 3.1).

:class:`DesisSession` ties together the interface, query analyzer, window
manager, and aggregation engine for centralized use, with runtime query
management (Sec 3.2)::

    session = DesisSession()
    session.submit("SELECT AVG(value) FROM stream WINDOW TUMBLING 5s")
    session.submit("SELECT MEDIAN(value) FROM stream WINDOW SESSION GAP 30s")
    for event in events:
        session.process(event)
    for result in session.close():
        print(result)

For decentralized deployments build a
:class:`~repro.cluster.desis.DesisCluster` with the same parsed queries.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.engine import AggregationEngine, EngineStats
from repro.core.errors import EngineError
from repro.core.event import Event
from repro.core.query import Query
from repro.core.results import ResultSink, WindowResult
from repro.core.types import SharingPolicy
from repro.interface.parser import parse_query

__all__ = ["DesisSession"]


class DesisSession:
    """A centralized Desis instance accepting textual or built queries."""

    def __init__(self, *, policy: SharingPolicy = SharingPolicy.FULL,
                 recorder=None, merge_mode: str = "incremental",
                 measure_latency: bool = False,
                 latency_sample_every: int = 100,
                 latency_expiry_horizon_ms: int | None = 600_000) -> None:
        self.policy = policy
        #: optional slice-lifecycle trace recorder handed to the engine
        #: (see :mod:`repro.obs.tracing`); ``None`` keeps tracing off
        self.recorder = recorder
        #: window-close merging: ``"incremental"`` (default) or ``"exact"``
        #: (see :class:`~repro.core.engine.AggregationEngine`)
        self.merge_mode = merge_mode
        #: when enabled, results flow through a
        #: :class:`~repro.metrics.latency.LatencyProbe` measuring
        #: wall-clock event-to-result latency.  The probe's pending-sample
        #: buffer is *bounded by default*: samples no window covered
        #: within ``latency_expiry_horizon_ms`` of event time (10 min)
        #: are evicted and counted as ``expired_samples``; pass ``None``
        #: only for short bounded replays that can afford keeping every
        #: sample forever.
        self.measure_latency = measure_latency
        self.latency_sample_every = latency_sample_every
        self.latency_expiry_horizon_ms = latency_expiry_horizon_ms
        self._probe = None
        self._engine: AggregationEngine | None = None
        self._pending: list[Query] = []
        self._counter = 0

    # -- query management ------------------------------------------------------------

    def submit(self, query: str | Query, *, query_id: str | None = None) -> str:
        """Register a query (text or :class:`Query`); returns its id.

        Before the first event arrives queries are collected so the
        analyzer can group them together; afterwards they attach at
        stream time (Sec 3.2).
        """
        if isinstance(query, str):
            if query_id is None:
                query_id = f"q{self._counter}"
            parsed = parse_query(query, query_id=query_id)
        else:
            parsed = query
            if query_id is not None and query_id != parsed.query_id:
                raise EngineError("query_id conflicts with the Query object")
        self._counter += 1
        if self._engine is None:
            self._pending.append(parsed)
        else:
            self._engine.add_query(parsed)
        return parsed.query_id

    def remove(self, query_id: str, *, drain: bool = False) -> None:
        """Remove a running (or pending) query.

        ``drain=True`` implements the paper's "wait for the last window to
        end" removal mode (Sec 3.2); the default removes immediately.
        """
        if self._engine is None:
            before = len(self._pending)
            self._pending = [q for q in self._pending if q.query_id != query_id]
            if len(self._pending) == before:
                raise EngineError(f"unknown query id: {query_id!r}")
            return
        self._engine.remove_query(query_id, drain=drain)

    @property
    def queries(self) -> list[Query]:
        if self._engine is None:
            return list(self._pending)
        return self._engine.plan.queries

    # -- processing ------------------------------------------------------------------

    def _ensure_engine(self) -> AggregationEngine:
        if self._engine is None:
            sink = None
            if self.measure_latency:
                from repro.metrics.latency import LatencyProbe

                sink = self._probe = LatencyProbe(
                    sample_every=self.latency_sample_every,
                    keep=True,
                    expiry_horizon_ms=self.latency_expiry_horizon_ms,
                )
            self._engine = AggregationEngine(
                self._pending,
                policy=self.policy,
                sink=sink,
                recorder=self.recorder,
                merge_mode=self.merge_mode,
            )
            self._pending = []
        return self._engine

    def process(self, event: Event) -> None:
        engine = self._ensure_engine()
        if self._probe is not None:
            self._probe.on_ingest(event)
        engine.process(event)

    def process_many(self, events: Iterable[Event]) -> None:
        engine = self._ensure_engine()
        events = list(events)
        if self._probe is not None:
            for event in events:
                self._probe.on_ingest(event)
        engine.process_batch(events)

    def advance(self, time: int) -> None:
        self._ensure_engine().advance(time)

    def close(self, at_time: int | None = None) -> ResultSink:
        return self._ensure_engine().close(at_time)

    @property
    def results(self) -> list[WindowResult]:
        if self._engine is None:
            return []
        return list(self._engine.sink)

    @property
    def stats(self) -> EngineStats:
        return self._ensure_engine().stats

    def latency_summary(self):
        """Percentile summary of the probe (``None`` unless measuring).

        The summary carries ``expired_samples`` — samples the bounded
        expiry horizon evicted unmatched — which
        :func:`repro.obs.registry.publish_latency_summary` surfaces as
        the ``latency.expired_samples`` counter.
        """
        if self._probe is None:
            return None
        return self._probe.summary()
