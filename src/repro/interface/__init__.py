"""The user interface: textual queries and the Desis session facade."""

from repro.interface.parser import expand_by_key, parse_queries, parse_query
from repro.interface.session import DesisSession

__all__ = ["DesisSession", "expand_by_key", "parse_queries", "parse_query"]
