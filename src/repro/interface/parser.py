"""A small textual query language (the paper's *interface* component).

Grammar (case-insensitive keywords)::

    SELECT <function>(value) FROM stream
        [WHERE key = '<key>' [AND value >= <lo>] [AND value < <hi>]]
        WINDOW <window>

    <function> := SUM | COUNT | AVG | AVERAGE | MIN | MAX | MEDIAN
                | PRODUCT | GEOMETRIC_MEAN | QUANTILE(<q>)
    <window>   := TUMBLING <extent>
                | SLIDING <extent> EVERY <extent>
                | SESSION GAP <duration>
                | USER_DEFINED END '<marker>' [START '<marker>']
    <extent>   := <duration> | <int> EVENTS
    <duration> := <int> MS | <number> S | <number> MIN

Examples::

    SELECT AVG(value) FROM stream WINDOW TUMBLING 5s
    SELECT QUANTILE(0.95)(value) FROM stream
        WHERE key = 'speed' AND value >= 80 WINDOW SLIDING 10s EVERY 2s
    SELECT MAX(value) FROM stream WINDOW USER_DEFINED END 'trip_end'
    SELECT SUM(value) FROM stream WINDOW TUMBLING 1000 EVENTS
"""

from __future__ import annotations

import re

from repro.core.errors import QueryError
from repro.core.functions import FunctionSpec
from repro.core.predicates import Selection
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, WindowMeasure

__all__ = ["parse_query", "parse_queries", "expand_by_key"]

_FUNCTIONS = {
    "SUM": AggFunction.SUM,
    "COUNT": AggFunction.COUNT,
    "AVG": AggFunction.AVERAGE,
    "AVERAGE": AggFunction.AVERAGE,
    "MIN": AggFunction.MIN,
    "MAX": AggFunction.MAX,
    "MEDIAN": AggFunction.MEDIAN,
    "PRODUCT": AggFunction.PRODUCT,
    "GEOMETRIC_MEAN": AggFunction.GEOMETRIC_MEAN,
    "VARIANCE": AggFunction.VARIANCE,
    "STDDEV": AggFunction.STDDEV,
}

_SELECT = re.compile(
    r"^\s*SELECT\s+(?P<fn>[A-Z_]+)\s*(?:\(\s*(?P<q>[0-9.]+)\s*\))?"
    r"\s*\(\s*(?P<distinct>DISTINCT\s+)?value\s*\)\s+FROM\s+stream\s*",
    re.IGNORECASE,
)
_WHERE = re.compile(r"\bWHERE\s+(?P<clauses>.*?)\s*(?=\bWINDOW\b)",
                    re.IGNORECASE | re.DOTALL)
_WINDOW = re.compile(r"\bWINDOW\s+(?P<spec>.+?)\s*$", re.IGNORECASE | re.DOTALL)
_KEY_CLAUSE = re.compile(r"key\s*=\s*'(?P<key>[^']*)'", re.IGNORECASE)
_LO_CLAUSE = re.compile(r"value\s*>=\s*(?P<lo>-?[0-9.]+)", re.IGNORECASE)
_HI_CLAUSE = re.compile(r"value\s*<\s*(?P<hi>-?[0-9.]+)", re.IGNORECASE)

_DURATION = re.compile(
    r"^(?P<n>[0-9]*\.?[0-9]+)\s*(?P<unit>ms|s|min)$", re.IGNORECASE
)
_COUNT_EXTENT = re.compile(r"^(?P<n>[0-9]+)\s+events$", re.IGNORECASE)


def _parse_extent(text: str) -> tuple[int, WindowMeasure]:
    """An extent is a duration (ms) or an event count."""
    text = text.strip()
    count = _COUNT_EXTENT.match(text)
    if count:
        return int(count.group("n")), WindowMeasure.COUNT
    duration = _DURATION.match(text)
    if not duration:
        raise QueryError(f"cannot parse window extent: {text!r}")
    value = float(duration.group("n"))
    unit = duration.group("unit").lower()
    scale = {"ms": 1, "s": 1_000, "min": 60_000}[unit]
    return int(value * scale), WindowMeasure.TIME


def _parse_window(text: str) -> WindowSpec:
    text = text.strip()
    upper = text.upper()
    if upper.startswith("TUMBLING"):
        length, measure = _parse_extent(text[len("TUMBLING"):])
        return WindowSpec.tumbling(length, measure=measure)
    if upper.startswith("SLIDING"):
        body = text[len("SLIDING"):]
        parts = re.split(r"\bEVERY\b", body, flags=re.IGNORECASE)
        if len(parts) != 2:
            raise QueryError("SLIDING window needs 'EVERY <extent>'")
        length, measure = _parse_extent(parts[0])
        slide, slide_measure = _parse_extent(parts[1])
        if measure is not slide_measure:
            raise QueryError("SLIDING length and EVERY must share a measure")
        return WindowSpec.sliding(length, slide, measure=measure)
    if upper.startswith("SESSION"):
        match = re.match(r"SESSION\s+GAP\s+(?P<gap>.+)$", text, re.IGNORECASE)
        if not match:
            raise QueryError("SESSION window needs 'GAP <duration>'")
        gap, measure = _parse_extent(match.group("gap"))
        if measure is not WindowMeasure.TIME:
            raise QueryError("session gaps are durations")
        return WindowSpec.session(gap)
    if upper.startswith("USER_DEFINED"):
        end = re.search(r"END\s+'(?P<m>[^']*)'", text, re.IGNORECASE)
        if not end:
            raise QueryError("USER_DEFINED window needs END '<marker>'")
        start = re.search(r"START\s+'(?P<m>[^']*)'", text, re.IGNORECASE)
        return WindowSpec.user_defined(
            end_marker=end.group("m"),
            start_marker=start.group("m") if start else None,
        )
    raise QueryError(f"unknown window type in: {text!r}")


def parse_query(text: str, *, query_id: str) -> Query:
    """Parse one query string into a :class:`~repro.core.query.Query`."""
    head = _SELECT.match(text)
    if not head:
        raise QueryError(
            f"query must start with SELECT <fn>(value) FROM stream: {text!r}"
        )
    fn_name = head.group("fn").upper()
    quantile_text = head.group("q")
    if fn_name == "QUANTILE":
        if quantile_text is None:
            raise QueryError("QUANTILE needs a parameter, e.g. QUANTILE(0.95)")
        function = FunctionSpec(AggFunction.QUANTILE, float(quantile_text))
    else:
        if quantile_text is not None:
            raise QueryError(f"{fn_name} takes no parameter")
        if fn_name not in _FUNCTIONS:
            raise QueryError(f"unknown aggregation function: {fn_name}")
        function = FunctionSpec(_FUNCTIONS[fn_name])

    where = _WHERE.search(text)
    key = lo = hi = None
    if where:
        clauses = where.group("clauses")
        key_match = _KEY_CLAUSE.search(clauses)
        if key_match:
            key = key_match.group("key")
        lo_match = _LO_CLAUSE.search(clauses)
        if lo_match:
            lo = float(lo_match.group("lo"))
        hi_match = _HI_CLAUSE.search(clauses)
        if hi_match:
            hi = float(hi_match.group("hi"))
        if key is None and lo is None and hi is None:
            raise QueryError(f"unsupported WHERE clause: {clauses!r}")
    selection = Selection(
        key=key, lo=lo, hi=hi, deduplicate=head.group("distinct") is not None
    )

    window_match = _WINDOW.search(text)
    if not window_match:
        raise QueryError("query needs a WINDOW clause")
    window = _parse_window(window_match.group("spec"))
    return Query(
        query_id=query_id, window=window, function=function, selection=selection
    )


def parse_queries(texts: list[str], *, prefix: str = "q") -> list[Query]:
    """Parse several query strings, assigning ids ``{prefix}0..n-1``."""
    return [
        parse_query(text, query_id=f"{prefix}{index}")
        for index, text in enumerate(texts)
    ]


def expand_by_key(query: Query, keys: list[str]) -> list[Query]:
    """One query per key: the paper's *window keys* (Sec 2.1).

    Events with different keys go to individual windows; Desis expresses
    that as one query per key, all sharing a query-group (their key
    selections are pairwise disjoint) and each key becoming one selection
    operator per slice (Fig 7e)::

        per_player = expand_by_key(query, generator.keys)

    The template query must not already restrict the key.
    """
    if query.selection.key is not None:
        raise QueryError(
            f"query {query.query_id!r} already selects key "
            f"{query.selection.key!r}"
        )
    return [
        Query(
            query_id=f"{query.query_id}-{key}",
            window=query.window,
            function=query.function,
            selection=Selection(
                key=key,
                lo=query.selection.lo,
                hi=query.selection.hi,
                deduplicate=query.selection.deduplicate,
            ),
        )
        for key in keys
    ]
