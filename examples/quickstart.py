"""Quickstart: multiple windowed queries over one stream, shared slices.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.datagen import DataGenerator, DataGeneratorConfig
from repro.interface import DesisSession


def main() -> None:
    session = DesisSession()

    # Three queries with different window types, measures, and functions —
    # Desis puts them into one query-group and processes every event once.
    session.submit("SELECT AVG(value) FROM stream WINDOW TUMBLING 5s")
    session.submit(
        "SELECT QUANTILE(0.95)(value) FROM stream WINDOW SLIDING 10s EVERY 2s"
    )
    session.submit("SELECT MAX(value) FROM stream WINDOW SESSION GAP 3s")

    generator = DataGenerator(
        DataGeneratorConfig(
            keys=("sensor-1", "sensor-2"),
            rate=2_000.0,
            gap_every_ms=20_000,
            gap_ms=5_000,
        ),
        seed=42,
    )
    session.process_many(generator.events(60_000))
    results = session.close()

    print(f"{len(results)} window results from {session.stats.events} events")
    print(
        f"query groups: {session._engine.group_count}, "
        f"operator executions: {session.stats.calculations} "
        f"({session.stats.calculations / session.stats.events:.1f} per event)"
    )
    print("\nfirst results per query:")
    for query in session.queries:
        first = results.for_query(query.query_id)[:3]
        print(f"  {query}")
        for result in first:
            print(f"    {result}")


if __name__ == "__main__":
    main()
