"""Multi-query sharing: the paper's headline result (Sec 6.3.2, Fig 9c).

Hundreds of dashboards each watch a different latency percentile of the
same stream.  Systems that share only between identical functions create
one query-group per percentile and recompute the sort for each; Desis
serves them all from one shared non-decomposable sort operator.

Run with::

    python examples/multi_query_sharing.py
"""

from __future__ import annotations

from repro.baselines import DeSWProcessor, DesisProcessor
from repro.datagen import DataGenerator, DataGeneratorConfig
from repro.harness import fmt_rate, print_table, quantile_queries, run_processor


def main() -> None:
    events = list(
        DataGenerator(DataGeneratorConfig(rate=10_000.0), seed=7).events(100_000)
    )
    queries = quantile_queries(250)

    desis = run_processor(DesisProcessor, queries, events)
    desw = run_processor(DeSWProcessor, queries, events)

    print_table(
        "250 distinct quantile queries over the same stream",
        ["system", "query groups", "operator executions", "throughput"],
        [
            [
                "Desis",
                1,
                f"{desis.calculations:,}",
                fmt_rate(desis.events_per_second),
            ],
            [
                "DeSW (same-function sharing)",
                250,
                f"{desw.calculations:,}",
                fmt_rate(desw.events_per_second),
            ],
        ],
    )
    speedup = desis.events_per_second / desw.events_per_second
    print(
        f"\nDesis executes one sort insert per event instead of 250 — "
        f"{speedup:.0f}x the throughput with identical results."
    )
    assert desis.results == desw.results


if __name__ == "__main__":
    main()
