"""Out-of-order ingestion with bounded lateness.

Edge gateways often deliver events slightly shuffled (retries, parallel
uplinks).  A :class:`ReorderingProcessor` buffers a bounded lateness in
front of the engine; results are identical to processing the stream in
order, and hopelessly late events are counted instead of corrupting
windows.

Run with::

    python examples/out_of_order.py
"""

from __future__ import annotations

import random

from repro.baselines import DesisProcessor
from repro.core.ordering import ReorderingProcessor
from repro.datagen import DataGenerator, DataGeneratorConfig
from repro.harness import print_table
from repro.interface import parse_queries


def shuffled(events, radius, seed=5):
    rng = random.Random(seed)
    out = list(events)
    for i in range(len(out) - 1):
        j = min(i + rng.randrange(radius + 1), len(out) - 1)
        out[i], out[j] = out[j], out[i]
    return out


def main() -> None:
    queries = parse_queries(
        [
            "SELECT AVG(value) FROM stream WINDOW TUMBLING 2s",
            "SELECT QUANTILE(0.9)(value) FROM stream WINDOW TUMBLING 2s",
        ]
    )
    events = list(
        DataGenerator(DataGeneratorConfig(rate=1_000.0), seed=9).events(30_000)
    )
    disordered = shuffled(events, radius=12)

    reference = DesisProcessor(queries)
    for event in events:
        reference.process(event)
    reference.close()

    processor = ReorderingProcessor(
        DesisProcessor(queries), max_lateness=1_000
    )
    for event in disordered:
        processor.process(event)
    processor.close()

    match = sorted(
        (r.query_id, r.start, r.end, round(float(r.value), 9))
        for r in processor.sink
    ) == sorted(
        (r.query_id, r.start, r.end, round(float(r.value), 9))
        for r in reference.sink
    )
    print_table(
        "30k events, shuffled within a ~12-event radius",
        ["pipeline", "results", "late drops", "identical to in-order"],
        [
            ["in-order Desis", len(reference.sink), "-", "-"],
            [
                "Desis + reorder buffer (1s lateness)",
                len(processor.sink),
                processor.late_dropped,
                str(match),
            ],
        ],
    )


if __name__ == "__main__":
    main()
