"""Decentralized aggregation in an IoT fleet (Sec 5, Figs 11-12).

Eight edge devices stream sensor readings through two gateways to a data
center.  Centralized processing ships every event to the root; Desis
pushes slicing to the devices and ships per-slice partial results,
saving ~99% of the traffic for decomposable functions.

Run with::

    python examples/decentralized_iot.py
"""

from __future__ import annotations

import statistics

from repro.baselines import ScottyProcessor
from repro.cluster import CentralizedCluster, ClusterConfig, DesisCluster
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction
from repro.datagen import DataGenerator, DataGeneratorConfig
from repro.harness import print_table
from repro.interface import parse_query
from repro.metrics import breakdown, event_time_latencies, fmt_bytes
from repro.network.topology import three_tier


def main() -> None:
    queries = [
        parse_query(
            "SELECT AVG(value) FROM stream WHERE key = 'temperature' "
            "WINDOW TUMBLING 10s",
            query_id="avg-temp",
        ),
        parse_query(
            "SELECT MAX(value) FROM stream WHERE key = 'vibration' "
            "WINDOW SLIDING 30s EVERY 10s",
            query_id="max-vibration",
        ),
        parse_query(
            "SELECT COUNT(value) FROM stream "
            "WHERE key = 'door' WINDOW SESSION GAP 20s",
            query_id="door-activity",
        ),
    ]
    topology = three_tier(n_locals=8, n_intermediates=2)
    generator = DataGenerator(
        DataGeneratorConfig(
            keys=("temperature", "vibration", "door"),
            key_weights=(6.0, 3.0, 1.0),
            rate=400.0,
            gap_every_ms=25_000,
            gap_ms=30_000,
        ),
        seed=11,
    )
    streams = generator.streams(8, 25_000)
    config = ClusterConfig(tick_interval=2_000, latency_ms=5.0)

    desis = DesisCluster(queries, topology, config=config).run(
        {k: list(v) for k, v in streams.items()}
    )
    central = CentralizedCluster(
        queries, topology, ScottyProcessor, config=config
    ).run({k: list(v) for k, v in streams.items()})

    rows = []
    for name, run in (("Desis (decentralized)", desis), ("Scotty (centralized)", central)):
        rolled = breakdown(run.network)
        lags = event_time_latencies(run.sink)
        rows.append(
            [
                name,
                len(run.sink),
                fmt_bytes(rolled.data_bytes),
                f"{statistics.fmean(lags):.0f} ms" if lags else "-",
            ]
        )
    print_table(
        "8 edge devices, 2 gateways, 1 data center",
        ["deployment", "results", "network data", "mean result latency"],
        rows,
    )
    saved = 1 - breakdown(desis.network).data_bytes / breakdown(central.network).data_bytes
    print(f"\nDesis saves {saved:.1%} of network traffic.")

    same = sorted(
        (r.query_id, r.start, r.end, round(float(r.value), 6)) for r in desis.sink
    ) == sorted(
        (r.query_id, r.start, r.end, round(float(r.value), 6)) for r in central.sink
    )
    print(f"identical results: {same}")


if __name__ == "__main__":
    main()
