"""User-defined windows: per-trip analytics (Sec 5.1.2's car-trip example).

A fleet of vehicles streams speed readings; each trip ends with a
``trip_end`` marker event.  User-defined windows compute per-trip maxima
while tumbling windows over the same stream serve a live dashboard — one
query-group, every event processed once.

Run with::

    python examples/trip_analytics.py
"""

from __future__ import annotations

from repro.core.event import Event
from repro.core.predicates import Selection
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction
from repro.datagen import DataGenerator, DataGeneratorConfig
from repro.harness import print_table
from repro.interface import DesisSession


def vehicle_stream(vehicle: str, seed: int, n: int) -> list[Event]:
    config = DataGeneratorConfig(
        keys=(vehicle,),
        rate=500.0,
        value_lo=0.0,
        value_hi=130.0,
        marker="trip_end",
        marker_every_ms=4_000,
    )
    return list(DataGenerator(config, seed=seed).events(n))


def main() -> None:
    vehicles = ("car-7", "car-12")
    session = DesisSession()
    for vehicle in vehicles:
        session.submit(
            Query.of(
                f"trip-max-{vehicle}",
                WindowSpec.user_defined(end_marker="trip_end"),
                AggFunction.MAX,
                selection=Selection(key=vehicle),
            )
        )
        session.submit(
            Query.of(
                f"dash-avg-{vehicle}",
                WindowSpec.tumbling(30_000),
                AggFunction.AVERAGE,
                selection=Selection(key=vehicle),
            )
        )

    # Merge the two vehicles' streams in time order.
    from repro.core.event import merge_streams

    streams = [vehicle_stream(v, seed=i + 1, n=20_000) for i, v in enumerate(vehicles)]
    session.process_many(merge_streams(*streams))
    results = session.close()

    rows = []
    for vehicle in vehicles:
        trips = results.for_query(f"trip-max-{vehicle}")
        rows.append(
            [
                vehicle,
                len(trips),
                f"{max(t.value for t in trips):.1f}",
                f"{sum(t.event_count for t in trips):,}",
            ]
        )
    print_table(
        "per-trip maxima (user-defined windows)",
        ["vehicle", "trips", "fastest trip max", "readings"],
        rows,
    )
    print(
        f"\n{session.stats.events:,} events, "
        f"{session.stats.calculations / session.stats.events:.2f} operator "
        f"executions per event across all four queries "
        f"(query groups: {session._engine.group_count})"
    )
    sample = results.for_query(f"trip-max-{vehicles[0]}")[:3]
    print("sample trips:", *[f"\n  {t}" for t in sample])


if __name__ == "__main__":
    main()
